"""LITE's error-return surface.

The paper's pitch (§3.2) is that applications see clean error codes
instead of raw transport states: a QP blowing through its retry budget,
a dead peer, or a lost control message all surface as a
:class:`LiteError` with a POSIX-style ``errno``.  The module lives apart
from :mod:`repro.core.kernel` so the RPC/one-sided engines can raise
LITE errors without circular imports.
"""

from __future__ import annotations

from errno import ECONNRESET, EIO, ENODEV, ETIMEDOUT
from typing import Optional

__all__ = ["LiteError", "ETIMEDOUT", "ENODEV", "ECONNRESET", "EIO"]


class LiteError(Exception):
    """A LITE API failure.

    ``errno`` classifies failures the fault-tolerance machinery
    produces; plain usage errors (bad name, permission denial) leave it
    ``None``:

    - ``ETIMEDOUT`` — retry budget exhausted with no answer from the peer
    - ``ENODEV``    — peer is known-dead (keep-alive) or never connected
    - ``ECONNRESET``— transport connection errored mid-operation
    - ``EIO``       — remote side rejected the operation (access/perm)
    """

    def __init__(self, message: str, errno: Optional[int] = None):
        super().__init__(message)
        self.errno = errno
