"""LITE core: the paper's primary contribution."""

from .api import (
    ClientSession,
    LiteContext,
    LiteLock,
    lite_boot,
    rpc_server_loop,
)
from .errors import ECONNRESET, EIO, ENODEV, ETIMEDOUT, LiteError
from .kernel import LiteKernel
from .lmr import ChunkInfo, LmrHandle, MappedLmr, MasterRecord, Permission
from .qos import PRIORITY_HIGH, PRIORITY_LOW, QosManager
from .rdma import OneSidedEngine, RdmaOpError
from .rpc import RpcCall, RpcEngine, RpcError, RpcTimeoutError

__all__ = [
    "ClientSession",
    "LiteKernel",
    "LiteContext",
    "LiteLock",
    "LiteError",
    "lite_boot",
    "rpc_server_loop",
    "Permission",
    "LmrHandle",
    "MappedLmr",
    "MasterRecord",
    "ChunkInfo",
    "OneSidedEngine",
    "RdmaOpError",
    "RpcEngine",
    "RpcCall",
    "RpcError",
    "RpcTimeoutError",
    "QosManager",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "ETIMEDOUT",
    "ENODEV",
    "ECONNRESET",
    "EIO",
]
