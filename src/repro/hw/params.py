"""Calibrated hardware/OS cost model.

All constants are derived from numbers the LITE paper itself reports
(SOSP '17, §4–§8) plus public ConnectX-3 / InfiniBand FDR specs.  The
DESIGN.md "Calibration constants" section records the provenance of each
value.  Times are microseconds, sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["SimParams", "DEFAULT_PARAMS"]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024
PAGE_SIZE = 4096


@dataclass
class SimParams:
    """Every tunable cost in the simulated testbed.

    The defaults model the paper's cluster: 2× Xeon E5-2620 (6 cores
    each), 128 GB DRAM, one 40 Gbps Mellanox ConnectX-3, one 40 Gbps IB
    switch.
    """

    # ---- fabric -----------------------------------------------------
    link_bandwidth_bytes_per_us: float = 5000.0  # 40 Gbps = 5 GB/s
    link_propagation_us: float = 0.05            # cable + PHY
    switch_latency_us: float = 0.15              # single-hop cut-through

    # ---- RNIC pipeline ----------------------------------------------
    rnic_processing_units: int = 2               # parallel WQE engines
    rnic_wqe_process_us: float = 0.10            # per work request
    rnic_doorbell_us: float = 0.15               # MMIO post over PCIe
    rnic_dma_setup_us: float = 0.15              # PCIe DMA start cost
    rnic_dma_bytes_per_us: float = 10000.0        # PCIe 3.0 x8 effective
    rnic_completion_us: float = 0.05             # CQE write-back
    rnic_ack_us: float = 0.15                    # RC ACK turnaround
    rnic_ud_header_bytes: int = 40               # GRH per UD packet

    # ---- RNIC SRAM (the scalability bottleneck, paper §2.4) ---------
    mr_key_cache_entries: int = 128              # Fig 4: knee ~100 MRs
    mr_key_miss_penalty_us: float = 1.3          # fetch MR record via DMA
    pte_cache_entries: int = 1024                # ×4 KB pages = 4 MB reach
    pte_miss_penalty_us: float = 0.9             # Fig 5: knee at 4 MB
    qp_cache_entries: int = 256                  # QP-state SRAM slots
    qp_miss_penalty_us: float = 0.6

    # ---- host memory / kernel ---------------------------------------
    page_size: int = PAGE_SIZE
    mr_register_base_us: float = 1.8             # ibv_reg_mr fixed cost
    mr_pin_page_us: float = 0.38                 # get_user_pages per page
    mr_unpin_page_us: float = 0.16               # put_page per page
    mr_deregister_base_us: float = 1.0
    malloc_base_us: float = 1.2                  # kernel buddy/slab alloc
    malloc_per_mb_us: float = 0.8                # zeroing amortized
    memcpy_bytes_per_us: float = 20000.0         # single-core DRAM copy
    memset_bytes_per_us: float = 30000.0

    # ---- syscall / crossing model (paper §5.2) ----------------------
    user_kernel_crossing_us: float = 0.15        # one direction, naive
    shared_page_return_us: float = 0.02          # optimized k->u "return"
    syscall_total_naive_us: float = 0.30         # trap + return
    lite_syscall_enter_us: float = 0.12          # optimized LITE entry
    lite_sharedpage_return_us: float = 0.05      # library sees ready flag

    # ---- CPU ---------------------------------------------------------
    cores_per_node: int = 12                     # 2× 6-core E5-2620
    poll_loop_us: float = 0.08                   # one busy-poll iteration
    thread_wakeup_us: float = 1.8                # sleep->run transition
    adaptive_busy_window_us: float = 10.0        # busy-check before sleep
    context_switch_us: float = 1.2

    # ---- LITE internals ----------------------------------------------
    lite_metadata_us: float = 0.25               # map+perm check (§5.3)
    lite_recv_stack_us: float = 0.30             # LT_recvRPC kernel path
    lite_reply_stack_us: float = 0.20            # LT_replyRPC kernel path
    lite_chunk_bytes: int = 4 * MB               # max physically-contig LMR chunk
    lite_rpc_ring_bytes: int = 16 * MB           # per-client RPC ring LMR
    lite_qp_factor_k: int = 2                    # K in K×N shared QPs
    lite_qp_window: int = 16                     # outstanding ops per QP
    lite_imm_post_batch: int = 64                # background IMM buffer posts
    # Data-plane batching knobs (§5.2 amortization).  Both default to 1,
    # which reproduces the seed's unbatched timing exactly: one doorbell
    # MMIO per work request and one poll/dispatch charge per completion.
    doorbell_batch: int = 1                      # WQEs posted per doorbell
    cq_poll_batch: int = 1                       # CQEs drained per poll wakeup
    lite_ctrl_slots: int = 256                   # pre-posted control recvs
    lite_ctrl_slot_bytes: int = 4096
    lite_rpc_timeout_us: float = 1_000_000.0     # RPC failure detection
    lite_reply_pool_bytes: int = 16 * MB         # client reply-slot pool

    # ---- failure handling (transport + LITE fault tolerance) ---------
    # IB qp_attr knobs: local ACK timeout per retransmit attempt, retry
    # budget, and receiver-not-ready policy (rnr_retry=7 means "retry
    # forever", the IB spec sentinel and the common datacenter setting).
    qp_timeout_us: float = 500.0                 # ACK timeout per attempt
    qp_retry_cnt: int = 7                        # transport retries (RC)
    qp_rnr_retry: int = 7                        # 7 = infinite (IB spec)
    qp_rnr_timer_us: float = 100.0               # wait between RNR retries
    # LITE-level retry/timeout policy (applies when fault tolerance is
    # enabled; 0 timeouts keep the seed's wait-forever behavior).
    lite_retry_cnt: int = 3                      # LITE-level op retries
    lite_retry_backoff_us: float = 500.0         # base exponential backoff
    lite_retry_backoff_cap_us: float = 8000.0    # backoff ceiling
    lite_ctrl_timeout_us: float = 4000.0         # ctrl RPC round trip bound
    lite_ctrl_retries: int = 3                   # ctrl-plane resend budget
    lite_keepalive_interval_us: float = 0.0      # 0 = keepalive off
    lite_keepalive_miss_limit: int = 3           # misses before dead

    # ---- TCP/IP over IB (IPoIB) --------------------------------------
    tcp_stack_tx_us: float = 6.0                 # per-send kernel TCP path
    tcp_stack_rx_us: float = 7.0                 # per-recv incl. softirq
    tcp_per_segment_us: float = 1.1              # seg processing both ends
    tcp_segment_bytes: int = 65536 - 120         # IPoIB-UD MTU minus hdrs
    tcp_bandwidth_bytes_per_us: float = 2600.0   # qperf-measured IPoIB ceiling
    tcp_copy_bytes_per_us: float = 12000.0       # user<->kernel copies

    # ---- RDMA-CM ------------------------------------------------------
    rdma_cm_overhead_us: float = 0.12            # event-channel bookkeeping

    # ---- control plane: QP bring-up & pooling (§2.4, KRCORE direction)
    # The collapsed RTS state machine hides the RESET->INIT->RTR->RTS
    # ladder from the failure model, not its cost: the control plane
    # pays one ibv_create_qp kernel call plus three ibv_modify_qp hops
    # per endpoint when it sets a connection up for real.
    qp_create_us: float = 12.0                   # ibv_create_qp kernel path
    qp_transition_us: float = 3.0                # one ibv_modify_qp state hop
    lite_qp_pool_reserve: int = 0                # prebuilt leasable conns per peer
    lite_qp_pool_cap: int = 8                    # max parked conns per pool
    lite_qp_lease_ttl_us: float = 2000.0         # QP-lease TTL (recovery cadence)

    derived: dict = field(default_factory=dict, repr=False)

    def __setattr__(self, name, value):
        # Every field assignment (including the ones dataclass __init__
        # makes) bumps a monotonic version; fast-path cost tables key on
        # it so any post-construction param mutation invalidates them.
        # ``derived`` and private names are bookkeeping, not cost inputs.
        object.__setattr__(self, name, value)
        if name != "derived" and not name.startswith("_"):
            object.__setattr__(
                self, "_version", self.__dict__.get("_version", 0) + 1
            )

    @property
    def version(self) -> int:
        """Monotonic mutation counter (see ``__setattr__``)."""
        return self.__dict__.get("_version", 0)

    def wire_time(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` on one 40 Gbps link."""
        return nbytes / self.link_bandwidth_bytes_per_us

    def one_way_fabric_us(self) -> float:
        """Fixed (size-independent) one-way fabric latency."""
        return 2 * self.link_propagation_us + self.switch_latency_us

    def dma_time(self, nbytes: int) -> float:
        """PCIe DMA time for ``nbytes`` (setup + transfer)."""
        return self.rnic_dma_setup_us + nbytes / self.rnic_dma_bytes_per_us

    def memcpy_time(self, nbytes: int) -> float:
        """Single-core DRAM copy time for ``nbytes``."""
        return nbytes / self.memcpy_bytes_per_us

    def pages_touched(self, offset: int, nbytes: int) -> int:
        """Number of 4 KB pages an access of ``nbytes`` at ``offset`` spans."""
        if nbytes <= 0:
            return 0
        first = offset // self.page_size
        last = (offset + nbytes - 1) // self.page_size
        return last - first + 1

    def copy(self, **overrides) -> "SimParams":
        """A new parameter set with ``overrides`` applied."""
        return replace(self, **overrides)


DEFAULT_PARAMS = SimParams()
