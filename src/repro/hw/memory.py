"""Host DRAM model: physical allocation, real backing bytes, page identity.

Data is *real* — every physical region is backed by a ``bytearray`` so
applications (DSM, MapReduce, graph engine) move and compute on actual
bytes — while allocation produces physically-contiguous extents from a
first-fit free list, so external fragmentation behaves like a real buddy
allocator under stress (§4.1's motivation for chunked LMRs).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

__all__ = ["PhysRegion", "HostMemory", "OutOfMemoryError"]


class OutOfMemoryError(Exception):
    """No physically-contiguous extent of the requested size exists."""


# Shared zero source for sparse reads (one block; sliced, never copied
# until the final join).  Sized to the largest block granularity below.
_ZERO_BLOCK = memoryview(bytes(1048576))


class PhysRegion:
    """A physically-contiguous extent of host DRAM with real contents.

    Backing storage is block-sparse (blocks materialized on first touch),
    so benchmarks can register very many — or multi-GB — regions and only
    pay host RAM for bytes actually written: untouched blocks read back
    as zeros, like the kernel's zero page.

    Block granularity scales with the region: small regions keep 64 KiB
    blocks (sparsity for many tiny allocations), while bulk regions —
    LMR chunks, RPC rings — use 1 MiB blocks so a multi-hundred-KB
    transfer is a single slice assignment instead of a Python loop over
    sixteen 64 KiB pieces.  Host-side only: simulated timings never see
    the block size.

    Bulk writes from immutable sources avoid the copy entirely: a write
    that covers a whole block with a read-only buffer (``bytes``, or a
    read-only ``memoryview`` over one) aliases the source into the block
    table instead of copying — the store keeps a reference, which is
    safe precisely because the source can never change underneath it.
    A later partial overwrite materializes the block back into a
    ``bytearray`` (copy-on-write).  Exact-extent reads of an aliased
    ``bytes`` block hand the same object back, so the common
    write-then-read-back pattern of large-message benchmarks moves zero
    bytes per op — the simulated DMA timings are unchanged.
    """

    _BLOCK = 65536
    _BLOCK_BULK = 1048576
    _BULK_THRESHOLD = 2097152

    __slots__ = ("node_id", "addr", "size", "_blocks", "_block", "freed")

    def __init__(self, node_id: int, addr: int, size: int):
        self.node_id = node_id
        self.addr = addr
        self.size = size
        self._blocks = {}
        self._block = (self._BLOCK_BULK if size >= self._BULK_THRESHOLD
                       else self._BLOCK)
        self.freed = False

    def _check(self, offset: int, nbytes: int, what: str) -> None:
        if self.freed:
            raise ValueError(f"{what} on freed physical region")
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise ValueError(
                f"{what} [{offset}, {offset + nbytes}) outside region "
                f"of size {self.size}"
            )

    def write(self, offset: int, payload) -> None:
        """Store real bytes (materializing touched blocks).

        ``payload`` may be any bytes-like object (``bytes``,
        ``bytearray``, ``memoryview``); slicing it goes through a
        memoryview so multi-block writes never copy the payload twice.
        """
        length = len(payload)
        self._check(offset, length, "write")
        block_size = self._block
        blocks = self._blocks
        block_index = offset // block_size
        inner = offset % block_size
        if inner + length <= block_size:
            # Fast path: the write lands in a single block.
            if inner == 0 and length == block_size:
                aliased = self._alias(payload)
                if aliased is not None:
                    blocks[block_index] = aliased
                    return
            block = blocks.get(block_index)
            if block is None:
                block = blocks[block_index] = bytearray(block_size)
            elif type(block) is not bytearray:
                # Copy-on-write: materialize an aliased block before
                # mutating it.
                block = blocks[block_index] = bytearray(block)
            block[inner : inner + length] = payload
            return
        view = memoryview(payload)
        cursor = 0
        while cursor < length:
            block_index = (offset + cursor) // block_size
            inner = (offset + cursor) % block_size
            take = min(block_size - inner, length - cursor)
            if inner == 0 and take == block_size:
                aliased = self._alias(view[cursor : cursor + take])
                if aliased is not None:
                    blocks[block_index] = aliased
                    cursor += take
                    continue
            block = blocks.get(block_index)
            if block is None:
                block = blocks[block_index] = bytearray(block_size)
            elif type(block) is not bytearray:
                block = blocks[block_index] = bytearray(block)
            block[inner : inner + take] = view[cursor : cursor + take]
            cursor += take

    @staticmethod
    def _alias(payload):
        """Return an immutable alias of ``payload``, or None if unsafe.

        Only sources that can never change are aliased: ``bytes``
        directly, and memoryviews whose exporting object is ``bytes``
        (a merely *read-only* view is not enough — ``toreadonly()`` on
        a bytearray forbids writes through the view while the buffer
        underneath keeps mutating).  A full-object view is unwrapped
        back to its ``bytes`` so exact-extent reads can return it
        without a copy.
        """
        if type(payload) is bytes:
            return payload
        if type(payload) is memoryview and type(payload.obj) is bytes:
            if payload.nbytes == len(payload.obj):
                return payload.obj
            return payload
        return None

    def read(self, offset: int, nbytes: int) -> bytes:
        """Load real bytes; untouched blocks read as zeros.

        Untouched (never-written) blocks are never materialized: holes
        contribute slices of a shared zero buffer, and each touched
        block contributes exactly one copy (``b"".join`` consumes the
        memoryview slices directly).
        """
        self._check(offset, nbytes, "read")
        block_size = self._block
        blocks = self._blocks
        block_index = offset // block_size
        inner = offset % block_size
        if inner + nbytes <= block_size:
            # Fast path: the read comes from a single block.
            block = blocks.get(block_index)
            if block is None:
                return bytes(nbytes)
            if type(block) is bytes and inner == 0 and nbytes == len(block):
                # Exact-extent read of an aliased immutable block: hand
                # the same object back, no copy.
                return block
            return bytes(memoryview(block)[inner : inner + nbytes])
        zeros = _ZERO_BLOCK
        parts = []
        cursor = 0
        while cursor < nbytes:
            block_index = (offset + cursor) // block_size
            inner = (offset + cursor) % block_size
            take = min(block_size - inner, nbytes - cursor)
            block = blocks.get(block_index)
            if block is None:
                parts.append(zeros[:take])
            else:
                parts.append(memoryview(block)[inner : inner + take])
            cursor += take
        return b"".join(parts)

    def read_into(self, offset: int, buf) -> int:
        """Load bytes directly into a writable buffer; returns len(buf).

        Zero-copy counterpart of :meth:`read` for callers that own a
        destination ``bytearray``/``memoryview`` (RNIC DMA scatter).
        """
        dest = memoryview(buf)
        nbytes = len(dest)
        self._check(offset, nbytes, "read")
        block_size = self._block
        blocks = self._blocks
        cursor = 0
        while cursor < nbytes:
            block_index = (offset + cursor) // block_size
            inner = (offset + cursor) % block_size
            take = min(block_size - inner, nbytes - cursor)
            block = blocks.get(block_index)
            if block is None:
                dest[cursor : cursor + take] = _ZERO_BLOCK[:take]
            else:
                dest[cursor : cursor + take] = memoryview(block)[
                    inner : inner + take
                ]
            cursor += take
        return nbytes

    def page_ids(self, page_size: int, offset: int = 0, nbytes: Optional[int] = None):
        """Global page identities touched by an access, for PTE caching."""
        if nbytes is None:
            nbytes = self.size - offset
        if nbytes <= 0:
            return []
        first = (self.addr + offset) // page_size
        last = (self.addr + offset + nbytes - 1) // page_size
        return [(self.node_id, page) for page in range(first, last + 1)]

    def __repr__(self) -> str:
        return f"PhysRegion(node={self.node_id}, addr={self.addr:#x}, size={self.size})"


class HostMemory:
    """First-fit physical allocator over a node's DRAM."""

    # Observability hook: install_tracer() points this at the cluster's
    # Tracer per instance (HostMemory has no simulator reference).
    tracer = None

    def __init__(self, node_id: int, capacity: int = 128 * 1024 * 1024 * 1024):
        self.node_id = node_id
        self.capacity = capacity
        # Free list of (addr, size), address-ordered, coalesced.
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        self.allocated_bytes = 0
        # Live regions indexed by base address (for physical-address DMA).
        self._live: dict = {}
        self._live_addrs: List[int] = []
        # Free epoch: bumped on every free() so cached resolve() results
        # (the fast path's span memo) can be revalidated with one compare.
        # Allocation cannot invalidate an existing resolution, so alloc()
        # leaves it alone.
        self.version = 0

    def alloc(self, size: int) -> PhysRegion:
        """First-fit allocate a physically-contiguous extent."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        for index, (addr, extent) in enumerate(self._free):
            if extent >= size:
                if extent == size:
                    del self._free[index]
                else:
                    self._free[index] = (addr + size, extent - size)
                self.allocated_bytes += size
                region = PhysRegion(self.node_id, addr, size)
                self._live[addr] = region
                bisect.insort(self._live_addrs, addr)
                if self.tracer is not None:
                    self.tracer.instant("mem.alloc", node=self.node_id,
                                        nbytes=size, addr=addr)
                return region
        raise OutOfMemoryError(
            f"node {self.node_id}: no contiguous {size} B extent "
            f"({self.free_bytes} B free, largest {self.largest_free} B)"
        )

    def free(self, region: PhysRegion) -> None:
        """Release an extent back to the (coalescing) free list."""
        if region.freed:
            raise ValueError("double free of physical region")
        if region.node_id != self.node_id:
            raise ValueError("region belongs to a different node")
        region.freed = True
        self.version += 1
        self.allocated_bytes -= region.size
        del self._live[region.addr]
        index = bisect.bisect_left(self._live_addrs, region.addr)
        del self._live_addrs[index]
        self._insert_free(region.addr, region.size)
        if self.tracer is not None:
            self.tracer.instant("mem.free", node=self.node_id,
                                nbytes=region.size, addr=region.addr)

    def resolve(self, addr: int, nbytes: int = 0) -> Tuple[PhysRegion, int]:
        """Map a physical address to (live region, offset within it).

        Used by the RNIC when serving DMA against a physical-address MR
        (LITE's global MR).  Raises if the address range is not backed by
        a single live allocation.
        """
        index = bisect.bisect_right(self._live_addrs, addr) - 1
        if index >= 0:
            region = self._live[self._live_addrs[index]]
            offset = addr - region.addr
            if offset + max(nbytes, 1) <= region.size:
                return region, offset
        raise ValueError(
            f"node {self.node_id}: physical range [{addr:#x}, "
            f"{addr + nbytes:#x}) is not a live allocation"
        )

    def _insert_free(self, addr: int, size: int) -> None:
        # Keep the list address-ordered and coalesce neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (addr, size))
        # Coalesce with successor then predecessor.
        if lo + 1 < len(self._free):
            naddr, nsize = self._free[lo + 1]
            if addr + size == naddr:
                self._free[lo] = (addr, size + nsize)
                del self._free[lo + 1]
                size += nsize
        if lo > 0:
            paddr, psize = self._free[lo - 1]
            if paddr + psize == addr:
                self._free[lo - 1] = (paddr, psize + size)
                del self._free[lo]

    @property
    def free_bytes(self) -> int:
        """Total unallocated bytes."""
        return sum(size for _addr, size in self._free)

    @property
    def largest_free(self) -> int:
        """Largest contiguous free extent."""
        return max((size for _addr, size in self._free), default=0)

    @property
    def fragment_count(self) -> int:
        """Number of disjoint free extents (fragmentation gauge)."""
        return len(self._free)
