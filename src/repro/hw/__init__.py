"""Hardware models: RNIC, fabric, host memory, CPUs, cost parameters."""

from .caches import CacheStats, LruCache
from .cpu import CpuSet
from .fabric import Fabric, FabricError, LinkDownError, Port, TransferDropped
from .memory import HostMemory, OutOfMemoryError, PhysRegion
from .params import DEFAULT_PARAMS, SimParams
from .rnic import Rnic

__all__ = [
    "SimParams",
    "DEFAULT_PARAMS",
    "LruCache",
    "CacheStats",
    "HostMemory",
    "PhysRegion",
    "OutOfMemoryError",
    "CpuSet",
    "Fabric",
    "FabricError",
    "TransferDropped",
    "LinkDownError",
    "Port",
    "Rnic",
]
