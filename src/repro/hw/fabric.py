"""The InfiniBand fabric: one 40 Gbps switch, one link per node.

Transfers model cut-through switching: a message occupies the sender's
egress link and the receiver's ingress link for its serialization time
(enforcing the 5 GB/s ceiling at both endpoints and under incast), and
additionally pays the fixed propagation + switch latency.

Failure model: each port carries an ``up`` flag, and the fabric accepts
an optional ``fault`` hook (see :mod:`repro.fault`) consulted once per
non-loopback transfer.  A transfer that crosses a downed link or is
selected for loss still pays its serialization + propagation time (the
bytes leave the sender and die in the fabric, exactly like a packet
blackholed at a dead port) and then raises :class:`TransferDropped`, so
transport layers above can model IB retransmission timers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import FairResource, Simulator
from .params import SimParams

__all__ = ["Port", "Fabric", "FabricError", "TransferDropped", "LinkDownError"]


class FabricError(ValueError):
    """Invalid use of the fabric API (unknown node, bad size, ...)."""


class TransferDropped(Exception):
    """The fabric dropped this transfer (loss window or corrupted frame).

    Corruption is folded into loss: on real IB the ICRC check discards a
    corrupted packet at the receiver, which the sender observes exactly
    as loss.
    """


class LinkDownError(TransferDropped):
    """The transfer crossed a link that is administratively/physically down."""


class Port:
    """A node's full-duplex link: independent TX and RX channels."""

    def __init__(self, sim: Simulator, node_id: int):
        self.node_id = node_id
        # Fair per-flow (per-QP) arbitration, like the NIC's QP scheduler.
        self.tx = FairResource(sim, capacity=1)
        self.rx = FairResource(sim, capacity=1)
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.up = True

    def idle(self) -> bool:
        """True when neither channel is occupied (fast-path entry gate)."""
        return not (self.tx.in_use or self.rx.in_use)


class Fabric:
    """Single-switch network connecting all cluster nodes."""

    def __init__(self, sim: Simulator, params: SimParams):
        self.sim = sim
        self.params = params
        self.ports: Dict[int, Port] = {}
        # Node objects register themselves here so protocol stacks can
        # reach their peers (the simulation equivalent of "the wire knows
        # where everyone is").
        self.nodes: Dict[int, object] = {}
        self.total_bytes = 0
        self.transfer_count = 0
        self.dropped_transfers = 0
        # Optional fault hook with a should_drop(src, dst, nbytes, flow)
        # method; None (the default) keeps the fabric on the exact
        # fault-free fast path.
        self.fault = None

    def attach(self, node_id: int) -> Port:
        """Connect a node to the switch; returns its full-duplex port."""
        if node_id in self.ports:
            raise FabricError(f"node {node_id} already attached to fabric")
        port = self.ports[node_id] = Port(self.sim, node_id)
        return port

    def detach(self, node_id: int) -> None:
        """Unplug a node's port permanently (no restart possible).

        Later transfers touching the node raise :class:`FabricError`.
        For a *recoverable* outage use :meth:`set_link_state` instead —
        QPs keep their peer references and can retry once the link
        returns.
        """
        self._require_port(node_id)
        del self.ports[node_id]
        self.nodes.pop(node_id, None)

    def set_link_state(self, node_id: int, up: bool) -> None:
        """Bring a node's link up or down (both TX and RX directions)."""
        self._require_port(node_id).up = up

    def link_up(self, node_id: int) -> bool:
        """True when the node's link is attached and up."""
        port = self.ports.get(node_id)
        return port is not None and port.up

    def _require_port(self, node_id: int) -> Port:
        port = self.ports.get(node_id)
        if port is None:
            raise FabricError(f"node {node_id} is not attached to the fabric")
        return port

    def fp_path_clear(self, src_port: Port, dst_port: Port) -> bool:
        """True when a fast-path commit may model this src→dst path.

        One predicate for the vectorized/chained commits in
        ``verbs/fastpath.py``: no fault hook armed (the hook is
        consulted per transfer on the slow path, so any hook at all
        forces the generator path), both links up, and all four
        channels idle — src TX/RX and dst TX/RX, because a committed
        op holds the forward leg now and acquires the return leg
        mid-flight.
        """
        return (self.fault is None
                and src_port.up and dst_port.up
                and src_port.idle() and dst_port.idle())

    def transfer(self, src: int, dst: int, nbytes: int, flow: object = None):
        """Move ``nbytes`` from ``src`` to ``dst``; completes on arrival.

        Returns a generator; the caller resumes when the last byte has
        landed.  ``flow`` selects the arbitration bucket (QPs pass their
        QPN so backlogged flows share links fairly).  Loopback
        (src == dst) short-circuits the wire but still pays a minimal
        PCIe round through the NIC, matching how Verbs loopback behaves.

        Raises :class:`LinkDownError` / :class:`TransferDropped` after
        paying the wire time when the transfer cannot be delivered.

        Plain function (not a generator function): the tracer branch is
        taken once at call time, so the untraced hot path delegates to a
        single generator instead of nesting one inside a wrapper.
        """
        if self.sim.tracer is None:
            return self._transfer_impl(src, dst, nbytes, flow)
        return self._transfer_traced(src, dst, nbytes, flow)

    def _transfer_traced(self, src: int, dst: int, nbytes: int, flow: object):
        tracer = self.sim.tracer
        span = tracer.begin("fabric.hop", node=src, nbytes=nbytes, dst=dst)
        try:
            yield from self._transfer_impl(src, dst, nbytes, flow)
        except TransferDropped:
            tracer.end(span, outcome="dropped")
            raise
        except BaseException as exc:
            tracer.end(span, outcome="err:" + type(exc).__name__)
            raise
        tracer.end(span)

    def _transfer_impl(self, src: int, dst: int, nbytes: int, flow: object):
        ports = self.ports
        src_port = ports.get(src)
        dst_port = ports.get(dst)
        if src_port is None or dst_port is None:
            self._require_port(src)
            self._require_port(dst)
        if nbytes < 0:
            raise FabricError(f"negative transfer size: {nbytes}")
        params = self.params
        # params.wire_time(nbytes), inlined (hot path).
        serialization = nbytes / params.link_bandwidth_bytes_per_us
        self.total_bytes += nbytes
        self.transfer_count += 1
        sim = self.sim
        if src == dst:
            if not src_port.up:
                self.dropped_transfers += 1
                raise LinkDownError(f"node {src} link is down")
            yield sim.timeout(serialization + params.link_propagation_us)
            src_port.tx_bytes += nbytes
            src_port.rx_bytes += nbytes
            return
        if not src_port.up:
            # The sender's own link is dead: the NIC sees it immediately,
            # nothing is serialized.
            self.dropped_transfers += 1
            raise LinkDownError(f"node {src} link is down")
        dropped = not dst_port.up
        if not dropped and self.fault is not None:
            dropped = self.fault.should_drop(src, dst, nbytes, flow)
        src_port.tx_bytes += nbytes
        # Acquire egress then ingress (fixed order; a transfer waits on at
        # most one resource while holding the other, so no cycles).
        yield src_port.tx.request(flow)
        # fabric.serialize = TX-channel occupancy: from winning the egress
        # link until releasing it (includes any ingress-side stall, since
        # the egress link is held across it).
        tracer = sim.tracer
        ser = (tracer.begin("fabric.serialize", node=src, nbytes=nbytes)
               if tracer is not None else None)
        try:
            if dropped:
                # The frame still serializes out of the sender, then dies
                # in the fabric; it never contends for the receiver.
                yield sim.timeout(serialization)
            else:
                yield dst_port.rx.request(flow)
                try:
                    yield sim.timeout(serialization)
                finally:
                    dst_port.rx.release()
        finally:
            if ser is not None:
                tracer.end(ser)
            src_port.tx.release()
        # params.one_way_fabric_us(), inlined (hot path).
        yield sim.timeout(2 * params.link_propagation_us
                          + params.switch_latency_us)
        if dropped:
            self.dropped_transfers += 1
            if not dst_port.up:
                raise LinkDownError(f"node {dst} link is down")
            raise TransferDropped(f"transfer {src}->{dst} dropped by fault plan")
        dst_port.rx_bytes += nbytes
