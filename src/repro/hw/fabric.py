"""The InfiniBand fabric: one 40 Gbps switch, one link per node.

Transfers model cut-through switching: a message occupies the sender's
egress link and the receiver's ingress link for its serialization time
(enforcing the 5 GB/s ceiling at both endpoints and under incast), and
additionally pays the fixed propagation + switch latency.
"""

from __future__ import annotations

from typing import Dict

from ..sim import FairResource, Simulator
from .params import SimParams

__all__ = ["Port", "Fabric"]


class Port:
    """A node's full-duplex link: independent TX and RX channels."""

    def __init__(self, sim: Simulator, node_id: int):
        self.node_id = node_id
        # Fair per-flow (per-QP) arbitration, like the NIC's QP scheduler.
        self.tx = FairResource(sim, capacity=1)
        self.rx = FairResource(sim, capacity=1)
        self.tx_bytes = 0
        self.rx_bytes = 0


class Fabric:
    """Single-switch network connecting all cluster nodes."""

    def __init__(self, sim: Simulator, params: SimParams):
        self.sim = sim
        self.params = params
        self.ports: Dict[int, Port] = {}
        # Node objects register themselves here so protocol stacks can
        # reach their peers (the simulation equivalent of "the wire knows
        # where everyone is").
        self.nodes: Dict[int, object] = {}
        self.total_bytes = 0
        self.transfer_count = 0

    def attach(self, node_id: int) -> Port:
        """Connect a node to the switch; returns its full-duplex port."""
        if node_id in self.ports:
            raise ValueError(f"node {node_id} already attached to fabric")
        port = self.ports[node_id] = Port(self.sim, node_id)
        return port

    def transfer(self, src: int, dst: int, nbytes: int, flow: object = None):
        """Move ``nbytes`` from ``src`` to ``dst``; completes on arrival.

        Generator; the caller resumes when the last byte has landed.
        ``flow`` selects the arbitration bucket (QPs pass their QPN so
        backlogged flows share links fairly).  Loopback (src == dst)
        short-circuits the wire but still pays a minimal PCIe round
        through the NIC, matching how Verbs loopback behaves.
        """
        if src not in self.ports or dst not in self.ports:
            raise ValueError(f"transfer between unattached nodes {src}->{dst}")
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        params = self.params
        serialization = params.wire_time(nbytes)
        self.total_bytes += nbytes
        self.transfer_count += 1
        if src == dst:
            yield self.sim.timeout(serialization + params.link_propagation_us)
            return
        src_port, dst_port = self.ports[src], self.ports[dst]
        src_port.tx_bytes += nbytes
        dst_port.rx_bytes += nbytes
        # Acquire egress then ingress (fixed order; a transfer waits on at
        # most one resource while holding the other, so no cycles).
        yield src_port.tx.request(flow)
        try:
            yield dst_port.rx.request(flow)
            try:
                yield self.sim.timeout(serialization)
            finally:
                dst_port.rx.release()
        finally:
            src_port.tx.release()
        yield self.sim.timeout(params.one_way_fabric_us())
