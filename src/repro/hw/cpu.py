"""CPU model: cores, busy-time accounting, and wait strategies.

CPU *time* accounting is central to the paper's Figure 13 (CPU time per
RPC under the Facebook workload) and the §5.3 comparison (LITE 4.3 s vs
HERD 8.7 s / FaSST 8.8 s for the same request load).  Three wait
strategies are modelled:

- ``busy_wait``   — burn a core until the event fires (HERD/FaSST pollers).
- ``adaptive_wait`` — LITE's model (§5.2): busy-check a shared page for a
  short window, then sleep and pay a wakeup latency when woken.
- ``sleep_wait``  — block immediately (classic kernel threads / TCP).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from ..sim import Event, Resource, Simulator
from .params import SimParams

__all__ = ["CpuSet"]


class CpuSet:
    """A node's cores plus per-tag busy-time ledger."""

    def __init__(self, sim: Simulator, params: SimParams,
                 cores: Optional[int] = None, node_id: Optional[int] = None):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.cores = cores if cores is not None else params.cores_per_node
        self._resource = Resource(sim, capacity=self.cores)
        self.busy_time: Dict[str, float] = defaultdict(float)

    # -- accounting -----------------------------------------------------
    def charge(self, tag: str, amount: float) -> None:
        """Record CPU time without occupying a core (poll accounting)."""
        if amount < 0:
            raise ValueError(f"negative CPU charge: {amount}")
        self.busy_time[tag] += amount

    def total_busy(self) -> float:
        """Total CPU time charged across every tag."""
        return sum(self.busy_time.values())

    def reset_accounting(self) -> None:
        """Zero the busy-time ledger (benchmark phase boundaries)."""
        self.busy_time.clear()

    # -- execution ------------------------------------------------------
    def execute(self, duration: float, tag: str = "compute"):
        """Occupy one core for ``duration`` µs (queues if all busy)."""
        if duration < 0:
            raise ValueError(f"negative execute duration: {duration}")
        tracer = self.sim.tracer
        span = (tracer.begin("cpu.execute", node=self.node_id, tag=tag)
                if tracer is not None else None)
        try:
            yield self._resource.request()
            try:
                yield self.sim.timeout(duration)
                self.busy_time[tag] += duration
            finally:
                self._resource.release()
        finally:
            if span is not None:
                tracer.end(span)

    # -- wait strategies --------------------------------------------------
    def busy_wait(self, event: Event, tag: str = "poll"):
        """Busy-poll until ``event`` fires; charges the full wait.

        Returns the event's value.  Adds half a poll-loop iteration of
        latency (average discovery delay of a polling loop).
        """
        tracer = self.sim.tracer
        span = (tracer.begin("cpu.wait", node=self.node_id, strategy="busy")
                if tracer is not None else None)
        try:
            start = self.sim.now
            value = yield event
            self.busy_time[tag] += self.sim.now - start
            discover = self.params.poll_loop_us / 2
            yield self.sim.timeout(discover)
            self.busy_time[tag] += discover
            return value
        finally:
            if span is not None:
                tracer.end(span)

    def busy_wait_tracked(self, owner, event: Event, tag: str = "poll"):
        """:meth:`busy_wait`, with the park instant held on ``owner``.

        Identical charging to :meth:`busy_wait`, but the wait's start
        time lives in ``owner._poll_park_at`` instead of a generator
        frame local.  That lets the two-sided fast path replay one poll
        iteration arithmetically (wait charge + discovery + dispatch
        bookkeeping) without resuming the poller: the fast path reads
        and re-arms ``_poll_park_at`` itself, keeping ``busy_time``
        bit-identical to the generator path.
        """
        tracer = self.sim.tracer
        span = (tracer.begin("cpu.wait", node=self.node_id, strategy="busy")
                if tracer is not None else None)
        try:
            owner._poll_park_at = self.sim.now
            value = yield event
            self.busy_time[tag] += self.sim.now - owner._poll_park_at
            discover = self.params.poll_loop_us / 2
            yield self.sim.timeout(discover)
            self.busy_time[tag] += discover
            return value
        finally:
            if span is not None:
                tracer.end(span)

    def adaptive_wait(self, event: Event, tag: str = "adaptive"):
        """LITE's busy-check-then-sleep wait (§5.2).

        Busy-checks a shared ready page for ``adaptive_busy_window_us``;
        if the result is not ready by then, sleeps and pays the thread
        wakeup latency when the event finally fires.
        """
        tracer = self.sim.tracer
        if tracer is None:
            return (yield from self._adaptive_wait_impl(event, tag))
        span = tracer.begin("cpu.wait", node=self.node_id, strategy="adaptive")
        try:
            return (yield from self._adaptive_wait_impl(event, tag))
        finally:
            tracer.end(span)

    def _adaptive_wait_impl(self, event, tag):
        params = self.params
        start = self.sim.now
        value = yield event
        waited = self.sim.now - start
        if waited <= params.adaptive_busy_window_us:
            # Result arrived within the busy window: charged in full,
            # found within one poll iteration.
            self.busy_time[tag] += waited
            discover = params.poll_loop_us / 2
            yield self.sim.timeout(discover)
            self.busy_time[tag] += discover
        else:
            # Burned the busy window, slept, then paid a wakeup.
            self.busy_time[tag] += params.adaptive_busy_window_us
            yield self.sim.timeout(params.thread_wakeup_us)
            self.busy_time[tag] += params.thread_wakeup_us
        return value

    def adaptive_poll(self, cq, tag: str = "poll", max_entries: int = 16):
        """Busy-wait the next CQE, then drain the backlog in one charge.

        The coalesced poller (§5.2): the poll loop discovers *one* new
        completion (paying the usual busy wait plus half a poll-loop
        iteration of discovery latency), then harvests up to
        ``max_entries - 1`` further CQEs already sitting in the CQ with
        a single ``ibv_poll_cq`` call — no extra discovery latency and
        no extra per-CQE poll charge.  Returns the list of CQEs (at
        least one).
        """
        first = yield from self.busy_wait(cq.wait_wc(), tag=tag)
        batch = [first]
        if max_entries > 1:
            batch.extend(cq.poll(max_entries - 1))
        return batch

    def sleep_wait(self, event: Event, tag: str = "sleep"):
        """Block immediately; pay only wakeup latency and cost."""
        tracer = self.sim.tracer
        span = (tracer.begin("cpu.wait", node=self.node_id, strategy="sleep")
                if tracer is not None else None)
        try:
            value = yield event
            yield self.sim.timeout(self.params.thread_wakeup_us)
            self.busy_time[tag] += self.params.thread_wakeup_us
            return value
        finally:
            if span is not None:
                tracer.end(span)
