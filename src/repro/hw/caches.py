"""On-RNIC SRAM cache models.

The RNIC keeps three kinds of state in its (small) SRAM: memory-region
key records (lkey/rkey), cached page-table entries for registered
regions, and per-QP connection state.  Each is modelled as an LRU cache
with a fixed entry budget; a miss costs a host-memory fetch over PCIe.

These caches are the mechanism behind the paper's Figures 4, 5 and the
QP-count scalability discussion (§2.4): LITE sidesteps all three by
registering a single physical-address MR and sharing K×N QPs.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["LruCache", "LruDict", "CacheStats"]


class CacheStats:
    """Hit/miss counters, resettable between benchmark phases."""

    __slots__ = ("hits", "misses", "evictions", "installs")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.installs = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.installs = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (1.0 when untouched)."""
        total = self.accesses
        return self.hits / total if total else 1.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.3f})"
        )


class LruCache:
    """Fixed-capacity LRU over hashable keys.

    ``access`` returns True on a hit.  On a miss the entry is installed
    (the RNIC always fills after fetching from host memory), evicting the
    least-recently-used entry if full.

    Recency order rides the intrinsic insertion order of a plain dict:
    a hit is an O(1) delete + reinsert (move-to-end), the LRU victim is
    ``next(iter(dict))``.  Figure 4/5/14 sweeps call :meth:`access`
    millions of times, and plain-dict operations beat ``OrderedDict``'s
    linked-list bookkeeping on every one of them.
    """

    __slots__ = ("capacity", "name", "_entries", "stats")

    def __init__(self, capacity: int, name: str = "cache"):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._entries: "dict[Hashable, None]" = {}
        self.stats = CacheStats()

    def access(self, key: Hashable) -> bool:
        """Look up ``key``; True on hit (misses auto-install)."""
        entries = self._entries
        stats = self.stats
        if key in entries:
            # Move-to-end: delete + reinsert lands the key at the back
            # of the dict's insertion order (most recently used).
            del entries[key]
            entries[key] = None
            stats.hits += 1
            return True
        stats.misses += 1
        if len(entries) >= self.capacity:
            del entries[next(iter(entries))]
            stats.evictions += 1
        entries[key] = None
        stats.installs += 1
        return False

    def access_many(self, keys: Iterable[Hashable]) -> "tuple[int, int]":
        """Bulk :meth:`access`; returns ``(hits, misses)``.

        State- and stats-equivalent to looping :meth:`access` over
        ``keys`` (same final LRU order, same per-key evictions), but the
        counters are updated once at the end instead of per key.
        """
        entries = self._entries
        capacity = self.capacity
        hits = misses = evictions = installs = 0
        for key in keys:
            if key in entries:
                del entries[key]
                entries[key] = None
                hits += 1
                continue
            misses += 1
            if len(entries) >= capacity:
                del entries[next(iter(entries))]
                evictions += 1
            entries[key] = None
            installs += 1
        stats = self.stats
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.installs += installs
        return hits, misses

    def contains(self, key: Hashable) -> bool:
        """Probe without updating recency or stats."""
        return key in self._entries

    def contains_all(self, keys: Iterable[Hashable]) -> bool:
        """Probe many keys without updating recency or stats."""
        entries = self._entries
        for key in keys:
            if key not in entries:
                return False
        return True

    def _install(self, key: Hashable) -> None:
        entries = self._entries
        if len(entries) >= self.capacity:
            del entries[next(iter(entries))]
            self.stats.evictions += 1
        entries[key] = None
        self.stats.installs += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry (e.g., MR deregistration); True if present."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def invalidate_many(self, keys: Iterable[Hashable]) -> int:
        """Drop every listed entry; returns how many were present.

        O(len(keys)) — callers that know the doomed keys (MR
        deregistration knows its page ids) should prefer this over
        :meth:`invalidate_where`, which scans the whole cache.
        """
        entries = self._entries
        count = 0
        for key in keys:
            if key in entries:
                del entries[key]
                count += 1
        return count

    def invalidate_where(self, predicate) -> int:
        """Drop all entries matching ``predicate(key)``; returns count."""
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (stats retained)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"LruCache({self.name}, {len(self._entries)}/{self.capacity}, "
            f"{self.stats!r})"
        )


class LruDict:
    """Bounded key→value mapping with O(1) insertion-order eviction.

    The value-carrying sibling of :class:`LruCache`, used for the
    software-side duplicate-suppression caches (RPC reply cache, control
    reply cache).  Unlike :class:`LruCache`, lookups do NOT bump
    recency: eviction is pure insertion order, so replacing the old
    ``while len(...) >= MAX: pop(next(iter(...)))`` loops with
    :meth:`put` keeps the victim sequence — and therefore every
    duplicate-suppression outcome — bit-identical.  Overwriting an
    existing key keeps its original position (plain-dict assignment
    semantics, matching the legacy code).
    """

    __slots__ = ("capacity", "name", "_entries", "stats")

    def __init__(self, capacity: int, name: str = "cache"):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._entries: dict = {}
        self.stats = CacheStats()

    def get(self, key: Hashable, default=None):
        """Value for ``key`` (no recency bump; counts hit/miss)."""
        value = self._entries.get(key, default)
        if value is default:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Install ``key`` → ``value``, evicting oldest entries if full."""
        entries = self._entries
        if key in entries:
            entries[key] = value
            return
        stats = self.stats
        while len(entries) >= self.capacity:
            del entries[next(iter(entries))]
            stats.evictions += 1
        entries[key] = value
        stats.installs += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def invalidate_many(self, keys: Iterable[Hashable]) -> int:
        """Drop every listed entry; returns how many were present.

        Mirrors :meth:`LruCache.invalidate_many`: surviving entries
        keep their relative insertion order, so the eviction sequence
        after a batch invalidation matches deleting the same keys from
        a plain dict one by one.
        """
        entries = self._entries
        count = 0
        for key in keys:
            if key in entries:
                del entries[key]
                count += 1
        return count

    def clear(self) -> None:
        """Drop every entry (stats retained)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"LruDict({self.name}, {len(self._entries)}/{self.capacity}, "
            f"{self.stats!r})"
        )
