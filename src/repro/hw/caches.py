"""On-RNIC SRAM cache models.

The RNIC keeps three kinds of state in its (small) SRAM: memory-region
key records (lkey/rkey), cached page-table entries for registered
regions, and per-QP connection state.  Each is modelled as an LRU cache
with a fixed entry budget; a miss costs a host-memory fetch over PCIe.

These caches are the mechanism behind the paper's Figures 4, 5 and the
QP-count scalability discussion (§2.4): LITE sidesteps all three by
registering a single physical-address MR and sharing K×N QPs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

__all__ = ["LruCache", "CacheStats"]


class CacheStats:
    """Hit/miss counters, resettable between benchmark phases."""

    __slots__ = ("hits", "misses", "evictions", "installs")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.installs = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.installs = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (1.0 when untouched)."""
        total = self.accesses
        return self.hits / total if total else 1.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.3f})"
        )


class LruCache:
    """Fixed-capacity LRU over hashable keys.

    ``access`` returns True on a hit.  On a miss the entry is installed
    (the RNIC always fills after fetching from host memory), evicting the
    least-recently-used entry if full.
    """

    def __init__(self, capacity: int, name: str = "cache"):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()
        self.stats = CacheStats()

    def access(self, key: Hashable) -> bool:
        """Look up ``key``; True on hit (misses auto-install)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._install(key)
        return False

    def contains(self, key: Hashable) -> bool:
        """Probe without updating recency or stats."""
        return key in self._entries

    def _install(self, key: Hashable) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = None
        self.stats.installs += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry (e.g., MR deregistration); True if present."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def invalidate_where(self, predicate) -> int:
        """Drop all entries matching ``predicate(key)``; returns count."""
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (stats retained)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"LruCache({self.name}, {len(self._entries)}/{self.capacity}, "
            f"{self.stats!r})"
        )
