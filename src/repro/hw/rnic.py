"""RNIC model: WQE processing pipeline in front of finite SRAM caches.

Every work request (local post or incoming one-sided packet) occupies
one of the RNIC's processing units for its base cost plus whatever the
SRAM lookups add:

- *key lookup*: the MR record (lkey/rkey, bounds, permissions) must be
  resident; a miss fetches it from host memory over PCIe.
- *PTE lookups*: for MRs registered by virtual address, every 4 KB page
  the access touches needs a cached PTE; misses fetch from the host page
  table.  MRs registered by **physical address** (LITE's global MR) skip
  this stage entirely — the core trick of §4.1.
- *QP-state lookup*: the connection context for the QP.

Cache-miss time is spent *inside* the pipeline unit, so misses burn
RNIC throughput exactly the way Figure 5's thrashing collapse shows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..sim import Resource, Simulator
from .caches import LruCache
from .params import SimParams

__all__ = ["Rnic"]


class Rnic:
    """One 40 Gbps ConnectX-3-class NIC attached to a host."""

    def __init__(self, sim: Simulator, node_id: int, params: SimParams):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.key_cache = LruCache(params.mr_key_cache_entries, name="mr-keys")
        self.pte_cache = LruCache(params.pte_cache_entries, name="ptes")
        self.qp_cache = LruCache(params.qp_cache_entries, name="qp-state")
        self._pipeline = Resource(sim, capacity=params.rnic_processing_units)
        self.wqe_count = 0
        self.bytes_dma = 0
        # Bumped whenever cached per-op cost inputs tied to this RNIC
        # change (MR invalidation, cache resize); fast-path cost tables
        # key on it (see verbs/fastpath.py).
        self.cost_version = 0

    def fence(self) -> None:
        """Invalidate every primed fast-path cost table stamped against
        this RNIC.

        All fencing events route here: node crash/restart and lease
        expiry (``Node.fastpath_fence``), QP ERROR/reset
        (``QueuePair._invalidate_fastpath``), link transitions
        (``FaultInjector._set_link``), MR deregistration and SRAM
        resize (below).  A stale table stamped before the fence can
        then never commit — its ``cost_version`` stamp no longer
        matches — so no run-to-completion chain (one- or two-sided)
        crosses a fault it did not model.
        """
        self.cost_version += 1

    # -- SRAM lookup costs (computed eagerly, spent inside process()) ---
    def key_lookup_cost(self, key: int) -> float:
        """Cost of locating one MR record in SRAM."""
        hit = self.key_cache.access(key)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("rnic.cache.hit" if hit else "rnic.cache.miss",
                           node=self.node_id, cache="key")
        return 0.0 if hit else self.params.mr_key_miss_penalty_us

    def pte_lookup_cost(self, page_ids: Sequence) -> float:
        """Cost of resolving the PTEs for every page an access touches."""
        hits, misses = self.pte_cache.access_many(page_ids)
        # Accumulate the penalty per miss (not misses * penalty): repeated
        # float addition is what the golden traces were recorded with, and
        # the two shapes are not bit-identical for every count.
        cost = 0.0
        if misses:
            penalty = self.params.pte_miss_penalty_us
            for _ in range(misses):
                cost += penalty
        tracer = self.sim.tracer
        if tracer is not None and (hits or misses):
            # One summary marker per access, not one per page.
            tracer.instant("rnic.cache.miss" if misses else "rnic.cache.hit",
                           node=self.node_id, cache="pte",
                           hits=hits, misses=misses)
        return cost

    def qp_lookup_cost(self, qp_id: int) -> float:
        """Cost of resolving one QP's connection state in SRAM."""
        hit = self.qp_cache.access(qp_id)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("rnic.cache.hit" if hit else "rnic.cache.miss",
                           node=self.node_id, cache="qp")
        return 0.0 if hit else self.params.qp_miss_penalty_us

    def invalidate_mr(self, key: int, page_ids: Iterable = ()) -> None:
        """Deregistration drops the MR record and its cached PTEs.

        Batch invalidation: the MR knows exactly which page ids it
        covered, so this is O(pages) instead of a full PTE-cache scan
        per deregistration (MR-churn sweeps call this per unregister).
        """
        self.key_cache.invalidate(key)
        if page_ids:
            self.pte_cache.invalidate_many(page_ids)
        self.fence()

    def resize_caches(self, key_entries: int = None, pte_entries: int = None,
                      qp_entries: int = None) -> None:
        """Replace one or more SRAM caches with fresh, resized ones.

        Contents and stats start empty (an SRAM reconfiguration flushes
        it); ``cost_version`` is bumped so fast-path cost tables that
        captured references to the old cache objects rebuild.
        """
        if key_entries is not None:
            self.key_cache = LruCache(key_entries, name="mr-keys")
        if pte_entries is not None:
            self.pte_cache = LruCache(pte_entries, name="ptes")
        if qp_entries is not None:
            self.qp_cache = LruCache(qp_entries, name="qp-state")
        self.fence()

    # -- pipeline --------------------------------------------------------
    def process(self, extra_cost: float = 0.0, dma_bytes: int = 0):
        """Occupy one processing unit for one work request.

        ``extra_cost`` carries the SRAM miss penalties; ``dma_bytes``
        adds the PCIe DMA transfer for the payload.
        """
        params = self.params
        duration = params.rnic_wqe_process_us + extra_cost
        dma_time = 0.0
        if dma_bytes:
            dma_time = params.dma_time(dma_bytes)
            duration += dma_time
            self.bytes_dma += dma_bytes
        tracer = self.sim.tracer
        if tracer is None:
            yield self._pipeline.request()
            try:
                yield self.sim.timeout(duration)
            finally:
                self._pipeline.release()
            self.wqe_count += 1
            return
        # rnic.proc covers pipeline-queue wait + occupancy; q_us records
        # the queue-wait share so consumers can isolate pure occupancy.
        span = tracer.begin("rnic.proc", node=self.node_id, nbytes=dma_bytes,
                            lookup_us=extra_cost)
        try:
            yield self._pipeline.request()
            span.attrs["q_us"] = self.sim.now - span.start
            try:
                yield self.sim.timeout(duration)
            finally:
                self._pipeline.release()
        except BaseException as exc:
            tracer.end(span, outcome="err:" + type(exc).__name__)
            raise
        self.wqe_count += 1
        if dma_time:
            # The DMA burns the tail of the occupancy window.
            tracer.interval("rnic.dma", self.sim.now - dma_time, self.sim.now,
                            node=self.node_id, nbytes=dma_bytes, parent=span)
        tracer.end(span)

    def reset_stats(self) -> None:
        """Zero cache stats and op counters."""
        self.key_cache.stats.reset()
        self.pte_cache.stats.reset()
        self.qp_cache.stats.reset()
        self.wqe_count = 0
        self.bytes_dma = 0
