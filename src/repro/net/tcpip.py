"""Kernel TCP/IP over InfiniBand (IPoIB) — the non-RDMA baseline stack.

Models the path the paper's TCP/IP comparison points exercise (qperf
over IPoIB, Hadoop, PowerGraph): syscalls, user/kernel copies, kernel
TCP segment processing, softirq receive, and thread wakeups.  Payload
bytes are real; the per-connection throughput ceiling comes from the
kernel per-segment processing pipeline, matching measured IPoIB numbers
(well under the 40 Gbps link).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..sim import Resource, Simulator, Store

__all__ = ["TcpStack", "TcpConnection", "TcpListener"]

_conn_counter = itertools.count(start=1)


class _Stream:
    """One direction of a TCP byte stream with blocking reads."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.buffer = bytearray()
        self._waiters = []  # (nbytes, event)

    def deliver(self, data: bytes) -> None:
        """Kernel side: append received bytes, wake satisfied readers."""
        self.buffer.extend(data)
        self._wake()

    def _wake(self) -> None:
        still_waiting = []
        for nbytes, event in self._waiters:
            if len(self.buffer) >= nbytes and not event.triggered:
                chunk = bytes(self.buffer[:nbytes])
                del self.buffer[:nbytes]
                event.succeed(chunk)
            else:
                still_waiting.append((nbytes, event))
        self._waiters = still_waiting

    def read_exact(self, nbytes: int):
        """Event yielding exactly ``nbytes`` once buffered."""
        event = self.sim.event()
        if len(self.buffer) >= nbytes:
            chunk = bytes(self.buffer[:nbytes])
            del self.buffer[:nbytes]
            event.succeed(chunk)
        else:
            self._waiters.append((nbytes, event))
        return event


class TcpConnection:
    """An established socket; symmetric endpoints on two nodes."""

    def __init__(self, stack: "TcpStack", peer_node: int, conn_id: int):
        self.stack = stack
        self.sim = stack.sim
        self.peer_node = peer_node
        self.conn_id = conn_id
        self.inbound = _Stream(self.sim)
        self.peer: Optional["TcpConnection"] = None
        self.bytes_sent = 0
        self.bytes_received = 0
        # Socket send buffer: send(2) blocks once this much data is
        # in flight (unacked), the usual wmem_default-ish 256 KB.
        self.sndbuf_bytes = 256 * 1024
        self._inflight = 0
        self._buffer_waiters = []

    # -- data plane -----------------------------------------------------
    def send(self, data: bytes):
        """Blocking send(2): returns once the kernel accepted the bytes.

        Delivery to the peer's stream continues asynchronously (the
        kernel drains the socket buffer), which matches BSD semantics.
        """
        params = self.stack.params
        cpu = self.stack.node.cpu
        # Syscall entry + copy_from_user.
        yield from cpu.execute(
            params.syscall_total_naive_us + len(data) / params.tcp_copy_bytes_per_us,
            tag="tcp-tx",
        )
        # Admit segment by segment, blocking on socket-buffer space
        # (send(2) backpressure once sndbuf of data is unacked).
        segment_bytes = params.tcp_segment_bytes
        offset = 0
        total = len(data)
        while True:
            segment = bytes(data[offset : offset + segment_bytes])
            seg_len = max(len(segment), 1)
            while self._inflight + seg_len > self.sndbuf_bytes:
                gate = self.sim.event()
                self._buffer_waiters.append(gate)
                yield gate
            self._inflight += seg_len
            self.bytes_sent += len(segment)
            self.sim.process(self._transmit_segment(segment), name="tcp-seg")
            offset += seg_len
            if offset >= total:
                break

    def _transmit_segment(self, segment: bytes):
        params = self.stack.params
        seg_len = max(len(segment), 1)
        # Kernel TCP/IP per-segment processing (tx side), serialized
        # per stack: this is the single-stream bandwidth ceiling.
        yield self.stack._tx_pipe.request()
        try:
            stack_cost = (
                params.tcp_stack_tx_us + seg_len / params.tcp_bandwidth_bytes_per_us
            )
            yield self.sim.timeout(stack_cost)
            self.stack.node.cpu.charge("tcp-tx", stack_cost)
        finally:
            self.stack._tx_pipe.release()
        # Wire flight and receive-side processing overlap with the next
        # segment's stack processing; FIFO link arbitration keeps order.
        yield from self._fly(segment)

    def _fly(self, segment: bytes):
        fabric = self.stack.node.fabric
        src = self.stack.node.node_id
        yield from fabric.transfer(src, self.peer_node, max(len(segment), 1) + 78)
        peer = self.peer
        if peer is not None:
            yield from peer._receive_segment(segment)
        # Delivery acks the bytes: free socket-buffer space.
        self._inflight -= max(len(segment), 1)
        while self._buffer_waiters and self._inflight < self.sndbuf_bytes:
            self._buffer_waiters.pop(0).succeed()

    def _receive_segment(self, segment: bytes):
        params = self.stack.params
        cost = params.tcp_stack_rx_us + params.tcp_per_segment_us
        yield self.sim.timeout(cost)
        self.stack.node.cpu.charge("tcp-rx", cost)
        self.bytes_received += len(segment)
        self.inbound.deliver(segment)

    def recv_exact(self, nbytes: int):
        """Blocking recv(2) loop until exactly ``nbytes`` arrived."""
        params = self.stack.params
        cpu = self.stack.node.cpu
        data = yield from cpu.sleep_wait(self.inbound.read_exact(nbytes), tag="tcp-rx")
        # Syscall + copy_to_user.
        yield from cpu.execute(
            params.syscall_total_naive_us + nbytes / params.tcp_copy_bytes_per_us,
            tag="tcp-rx",
        )
        return data

    # -- framed convenience (length-prefixed messages) ---------------------
    def send_msg(self, payload: bytes):
        """Length-prefixed framed send (generator)."""
        header = len(payload).to_bytes(4, "little")
        yield from self.send(header + payload)

    def recv_msg(self):
        """Receive one length-prefixed message (generator)."""
        header = yield from self.recv_exact(4)
        length = int.from_bytes(header, "little")
        payload = yield from self.recv_exact(length)
        return payload


class TcpListener:
    """A listening socket: accept() blocks for inbound connections."""

    def __init__(self, stack: "TcpStack", port: int):
        self.stack = stack
        self.port = port
        self._backlog = Store(stack.sim)

    def accept(self):
        """Block for the next inbound connection (generator)."""
        conn = yield self._backlog.get()
        return conn


class TcpStack:
    """Per-node kernel TCP/IP stack."""

    def __init__(self, node):
        self.node = node
        self.sim = node.sim
        self.params = node.params
        self._listeners: Dict[int, TcpListener] = {}
        # Single tx pipeline per stack: kernel TCP processing is the
        # bottleneck well before the IB link for IPoIB.
        self._tx_pipe = Resource(self.sim, capacity=1)

    def listen(self, port: int) -> TcpListener:
        """Open a listening socket on ``port``."""
        if port in self._listeners:
            raise ValueError(f"port {port} already listening on node {self.node.node_id}")
        listener = TcpListener(self, port)
        self._listeners[port] = listener
        return listener

    def connect(self, dst_node: int, port: int):
        """Active open: 3-way handshake (1.5 RTT), returns connection."""
        fabric = self.node.fabric
        peer_node = fabric.nodes.get(dst_node)
        if peer_node is None:
            raise ValueError(f"no such node {dst_node}")
        peer_stack: TcpStack = peer_node.tcp
        listener = peer_stack._listeners.get(port)
        if listener is None:
            raise ConnectionRefusedError(
                f"node {dst_node} is not listening on port {port}"
            )
        conn_id = next(_conn_counter)
        local = TcpConnection(self, dst_node, conn_id)
        remote = TcpConnection(peer_stack, self.node.node_id, conn_id)
        local.peer, remote.peer = remote, local
        # SYN, SYN-ACK, ACK.
        for direction in range(3):
            src, dst = (
                (self.node.node_id, dst_node)
                if direction % 2 == 0
                else (dst_node, self.node.node_id)
            )
            yield from fabric.transfer(src, dst, 78)
            yield self.sim.timeout(self.params.tcp_per_segment_us)
        listener._backlog.put(remote)
        return local
