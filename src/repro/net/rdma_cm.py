"""RDMA-CM: the connection-manager convenience wrapper over Verbs.

Figure 7 includes an "RDMA-CM" line: same hardware datapath as raw
Verbs plus the librdmacm bookkeeping on every operation (event-channel
and id management).  The wrapper sets up a connected RC channel with a
pre-registered bounce MR on each side and exposes simple read/write.
"""

from __future__ import annotations

from ..verbs import Access, Opcode, SendWR, Sge

__all__ = ["RdmaCmChannel", "cm_handshake", "rdma_cm_connect"]


def cm_handshake(node_a, node_b):
    """The librdmacm connection-establishment exchange (generator).

    ADDR/ROUTE resolution plus the REQ/REP/RTU handshake: three
    100-byte round trips over the fabric, paid by every connection a
    CM-style control plane brings up.  Shared by :func:`rdma_cm_connect`
    and the QP pool's cold bring-up path (cluster/qp_pool.py).
    """
    fabric = node_a.fabric
    for _ in range(3):
        yield from fabric.transfer(node_a.node_id, node_b.node_id, 100)
        yield from fabric.transfer(node_b.node_id, node_a.node_id, 100)


class RdmaCmChannel:
    """One endpoint of an rdma_cm-established RC connection."""

    def __init__(self, node, qp, local_mr, remote_mr_addr, remote_rkey):
        self.node = node
        self.sim = node.sim
        self.params = node.params
        self.qp = qp
        self.local_mr = local_mr
        self.remote_mr_addr = remote_mr_addr
        self.remote_rkey = remote_rkey

    def write(self, local_offset: int, remote_offset: int, nbytes: int):
        """RDMA write through the CM channel (generator; blocks to done)."""
        yield self.sim.timeout(self.params.rdma_cm_overhead_us)
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(self.local_mr, local_offset, nbytes)],
            remote_addr=self.remote_mr_addr + remote_offset,
            rkey=self.remote_rkey,
        )
        status = yield self.qp.post_send(wr)
        return status

    def read(self, local_offset: int, remote_offset: int, nbytes: int):
        """RDMA read through the CM channel (generator)."""
        yield self.sim.timeout(self.params.rdma_cm_overhead_us)
        wr = SendWR(
            Opcode.READ,
            sgl=[Sge(self.local_mr, local_offset, nbytes)],
            remote_addr=self.remote_mr_addr + remote_offset,
            rkey=self.remote_rkey,
        )
        status = yield self.qp.post_send(wr)
        return status


def rdma_cm_connect(node_a, node_b, buffer_bytes: int = 1 << 20):
    """Set up a CM-managed RC channel pair (generator).

    Returns (channel_a, channel_b).  Includes the CM handshake: route
    resolution + connect request/reply over the fabric.
    """
    pd_a = node_a.device.alloc_pd()
    pd_b = node_b.device.alloc_pd()
    mr_a = yield from node_a.device.reg_mr(pd_a, buffer_bytes, Access.ALL)
    mr_b = yield from node_b.device.reg_mr(pd_b, buffer_bytes, Access.ALL)
    qa = node_a.device.create_qp(pd_a, "RC")
    qb = node_b.device.create_qp(pd_b, "RC")
    yield from cm_handshake(node_a, node_b)
    node_a.device.connect(qa, qb)
    chan_a = RdmaCmChannel(node_a, qa, mr_a, mr_b.base_addr, mr_b.rkey)
    chan_b = RdmaCmChannel(node_b, qb, mr_b, mr_a.base_addr, mr_a.rkey)
    return chan_a, chan_b
