"""Non-RDMA network stacks: IPoIB TCP and the RDMA-CM wrapper."""

from .rdma_cm import RdmaCmChannel, rdma_cm_connect
from .tcpip import TcpConnection, TcpListener, TcpStack

__all__ = [
    "TcpStack",
    "TcpConnection",
    "TcpListener",
    "RdmaCmChannel",
    "rdma_cm_connect",
]
