"""The Verbs device: registration, QP/CQ creation, inbound execution.

This is the ``ib_device`` + driver of one node.  Registration costs are
paid in the caller's timeline (they are blocking syscalls on real
hardware — Figure 8 measures them); the inbound path implements the
responder half of every RDMA operation, including permission checks and
SRAM-cache accounting on the responder RNIC.
"""

from __future__ import annotations

import itertools
import struct
from typing import Dict, Optional, Tuple

from ..hw.memory import PhysRegion
from .cq import CompletionQueue
from .mr import MemoryRegion
from .qp import QueuePair, SharedReceiveQueue
from .wr import Access, Opcode, RecvWR, WcStatus, WorkCompletion

__all__ = ["Device", "ProtectionDomain"]

# Global counters so keys/QPNs are unique across the whole cluster, as
# they effectively are on real fabrics.
_key_counter = itertools.count(start=1000)
_qpn_counter = itertools.count(start=1)
_pd_counter = itertools.count(start=1)

# Virtual addresses start high so they can never collide with physical
# addresses used by kernel (physical) MRs.
_VA_BASE = 1 << 44

# Raw permission bits (see MemoryRegion._access_bits): the responder
# check is a plain int ``&`` instead of enum.Flag.__and__ per packet.
_NEED_REMOTE_WRITE = Access.REMOTE_WRITE.value
_NEED_REMOTE_READ = Access.REMOTE_READ.value
_NEED_REMOTE_ATOMIC = Access.REMOTE_ATOMIC.value


class ProtectionDomain:
    """Groups MRs and QPs that may be used together."""

    def __init__(self, device: "Device"):
        self.device = device
        self.pd_id = next(_pd_counter)

    def __repr__(self) -> str:
        return f"PD({self.pd_id}@node{self.device.node.node_id})"


class Device:
    """Per-node Verbs device."""

    def __init__(self, node):
        self.node = node
        self.sim = node.sim
        self.params = node.params
        self.rnic = node.rnic
        self.mrs_by_lkey: Dict[int, MemoryRegion] = {}
        self.mrs_by_rkey: Dict[int, MemoryRegion] = {}
        self.qps: Dict[int, QueuePair] = {}
        self._va_next = _VA_BASE + (node.node_id << 40)
        self.mr_count = 0

    # -- object creation --------------------------------------------------
    def alloc_pd(self) -> ProtectionDomain:
        """Allocate a protection domain."""
        return ProtectionDomain(self)

    def create_cq(self, depth: int = 4096, name: str = "") -> CompletionQueue:
        """Create a completion queue."""
        return CompletionQueue(self.sim, depth=depth, name=name)

    def create_srq(self) -> SharedReceiveQueue:
        """Create a shared receive queue."""
        return SharedReceiveQueue(self.sim)

    def create_qp(
        self,
        pd: ProtectionDomain,
        qp_type: str = "RC",
        send_cq="auto",
        recv_cq="auto",
        max_send_wr: int = 1024,
        srq: Optional[SharedReceiveQueue] = None,
    ) -> QueuePair:
        """Create a QP.  Pass ``send_cq=None`` to suppress send CQEs
        entirely (LITE relies on replies instead of polling send state,
        §5.1); the default ``"auto"`` creates a private CQ."""
        qpn = next(_qpn_counter)
        qp = QueuePair(
            self,
            qpn,
            qp_type,
            pd,
            self.create_cq() if send_cq == "auto" else send_cq,
            self.create_cq() if recv_cq == "auto" else recv_cq,
            max_send_wr=max_send_wr,
            srq=srq,
        )
        self.qps[qpn] = qp
        return qp

    @staticmethod
    def connect(qp_a: QueuePair, qp_b: QueuePair) -> None:
        """Transition a pair of RC/UC QPs to RTS toward each other."""
        qp_a.connect(qp_b.device.node.node_id, qp_b.qpn)
        qp_b.connect(qp_a.device.node.node_id, qp_a.qpn)

    def destroy_qp(self, qp: QueuePair) -> None:
        """Tear down a QP (ibv_destroy_qp): drop the device registration
        and any primed fast-path table.  Disconnecting the *peer* end is
        the caller's responsibility — the QP pool always destroys conns
        as pairs."""
        qp._fp_table = None
        qp.remote = None
        self.qps.pop(qp.qpn, None)

    # -- memory registration -----------------------------------------------
    def reg_mr(
        self,
        pd: ProtectionDomain,
        size: int,
        access: Access = Access.ALL,
        region: Optional[PhysRegion] = None,
    ):
        """Register a virtual-address MR (generator; pays pinning cost).

        Allocates backing memory unless an existing ``region`` is given
        (registering already-allocated application memory).  Returns the
        MR.
        """
        params = self.params
        if region is None:
            region = self.node.memory.alloc(size)
        elif region.size < size:
            raise ValueError("backing region smaller than MR size")
        pages = (size + params.page_size - 1) // params.page_size
        # ibv_reg_mr: syscall + get_user_pages walk pinning every page.
        yield self.sim.timeout(
            params.mr_register_base_us + pages * params.mr_pin_page_us
        )
        lkey = next(_key_counter)
        rkey = next(_key_counter)
        mr = MemoryRegion(
            self,
            pd,
            lkey=lkey,
            rkey=rkey,
            base_addr=self._va_next,
            size=size,
            access=access,
            region=region,
            physical=False,
        )
        self._va_next += (size + params.page_size - 1) // params.page_size * params.page_size
        self._va_next += params.page_size  # guard page
        self.mrs_by_lkey[lkey] = mr
        self.mrs_by_rkey[rkey] = mr
        self.mr_count += 1
        return mr

    def reg_phys_mr(self, pd: ProtectionDomain, access: Access = Access.ALL):
        """Kernel-only: register one MR over all physical memory (§4.1).

        No page pinning (physical pages cannot be swapped under the
        kernel), no PTEs for the RNIC to cache, one key record total.
        """
        yield self.sim.timeout(self.params.mr_register_base_us)
        lkey = next(_key_counter)
        rkey = next(_key_counter)
        mr = MemoryRegion(
            self,
            pd,
            lkey=lkey,
            rkey=rkey,
            base_addr=0,
            size=self.node.memory.capacity,
            access=access,
            region=None,
            physical=True,
        )
        self.mrs_by_lkey[lkey] = mr
        self.mrs_by_rkey[rkey] = mr
        self.mr_count += 1
        return mr

    def dereg_mr(self, mr: MemoryRegion, free_backing: bool = True):
        """Deregister (generator; pays per-page unpin for virtual MRs)."""
        if mr.deregistered:
            raise ValueError("MR already deregistered")
        params = self.params
        if not mr.physical:
            yield self.sim.timeout(
                params.mr_deregister_base_us + mr.num_pages() * params.mr_unpin_page_us
            )
        else:
            yield self.sim.timeout(params.mr_deregister_base_us)
        mr.deregistered = True
        self.mrs_by_lkey.pop(mr.lkey, None)
        self.mrs_by_rkey.pop(mr.rkey, None)
        self.mr_count -= 1
        page_ids = []
        if mr.region is not None:
            page_ids = mr.region.page_ids(params.page_size)
        self.rnic.invalidate_mr(mr.lkey, page_ids)
        self.rnic.invalidate_mr(mr.rkey)
        if free_backing and mr.region is not None and not mr.region.freed:
            self.node.memory.free(mr.region)

    # -- responder path -------------------------------------------------------
    def _resolve_remote(
        self, rkey: int, addr: int, nbytes: int, need: int
    ) -> Tuple[Optional[MemoryRegion], WcStatus]:
        mr = self.mrs_by_rkey.get(rkey)
        if mr is None or mr.deregistered:
            return None, WcStatus.REM_INV_REQ_ERR
        if not (mr.base_addr <= addr
                and addr + nbytes <= mr.base_addr + mr.size):
            return None, WcStatus.REM_ACCESS_ERR
        if not (mr._access_bits & need):
            return None, WcStatus.REM_ACCESS_ERR
        return mr, WcStatus.SUCCESS

    def inbound(
        self,
        opcode: Opcode,
        src_node: int,
        src_qpn: int,
        dst_qpn: int,
        rkey: int,
        remote_addr: int,
        payload: bytes,
        imm: Optional[int],
        length: int,
        compare_add: int,
        swap: int,
        qp_type: str,
    ):
        """Responder-side execution of one inbound operation (generator).

        Returns ``(status, byte_len, return_payload)``.
        """
        rnic = self.rnic
        cost = rnic.qp_lookup_cost(dst_qpn)

        if opcode in (Opcode.WRITE, Opcode.WRITE_IMM):
            mr, status = self._resolve_remote(
                rkey, remote_addr, len(payload), _NEED_REMOTE_WRITE
            )
            if status is not WcStatus.SUCCESS:
                yield from rnic.process(cost)
                return status, 0, b""
            offset = remote_addr - mr.base_addr
            cost += rnic.key_lookup_cost(rkey)
            cost += rnic.pte_lookup_cost(mr.page_ids(offset, len(payload)))
            yield from rnic.process(cost, dma_bytes=len(payload))
            try:
                mr.write(offset, payload)
            except ValueError:
                # Physical-MR access to memory that is no longer a live
                # allocation (e.g. a reply landing after the client freed
                # its slot): NAK like real hardware, don't crash.
                return WcStatus.REM_ACCESS_ERR, 0, b""
            if opcode is Opcode.WRITE_IMM:
                status = yield from self._deliver_recv(
                    dst_qpn, src_node, src_qpn, b"", imm, Opcode.RECV_IMM,
                    byte_len=len(payload),
                )
                if status is WcStatus.RNR_RETRY_EXC_ERR:
                    return status, 0, b""
            return WcStatus.SUCCESS, len(payload), b""

        if opcode is Opcode.READ:
            mr, status = self._resolve_remote(
                rkey, remote_addr, length, _NEED_REMOTE_READ
            )
            if status is not WcStatus.SUCCESS:
                yield from rnic.process(cost)
                return status, 0, b""
            offset = remote_addr - mr.base_addr
            cost += rnic.key_lookup_cost(rkey)
            cost += rnic.pte_lookup_cost(mr.page_ids(offset, length))
            yield from rnic.process(cost, dma_bytes=length)
            try:
                return WcStatus.SUCCESS, length, mr.read(offset, length)
            except ValueError:
                return WcStatus.REM_ACCESS_ERR, 0, b""

        if opcode in (Opcode.FETCH_ADD, Opcode.CMP_SWAP):
            mr, status = self._resolve_remote(rkey, remote_addr, 8, _NEED_REMOTE_ATOMIC)
            if status is not WcStatus.SUCCESS:
                yield from rnic.process(cost)
                return status, 0, b""
            offset = remote_addr - mr.base_addr
            cost += rnic.key_lookup_cost(rkey)
            cost += rnic.pte_lookup_cost(mr.page_ids(offset, 8))
            yield from rnic.process(cost, dma_bytes=8)
            # Read-modify-write with no intervening yield: atomic in the
            # event loop, like the RNIC's atomic execution unit.
            try:
                old = struct.unpack("<Q", mr.read(offset, 8))[0]
            except ValueError:
                return WcStatus.REM_ACCESS_ERR, 0, b""
            if opcode is Opcode.FETCH_ADD:
                new = (old + compare_add) % (1 << 64)
            else:
                new = swap if old == compare_add else old
            mr.write(offset, struct.pack("<Q", new))
            return WcStatus.SUCCESS, 8, struct.pack("<Q", old)

        if opcode is Opcode.SEND:
            yield from rnic.process(cost)
            status = yield from self._deliver_recv(
                dst_qpn, src_node, src_qpn, payload, imm, Opcode.RECV,
                byte_len=len(payload),
            )
            return status, len(payload), b""

        raise ValueError(f"unhandled inbound opcode {opcode}")

    def _deliver_recv(
        self,
        dst_qpn: int,
        src_node: int,
        src_qpn: int,
        payload: bytes,
        imm: Optional[int],
        opcode: Opcode,
        byte_len: int,
    ):
        """Consume a recv WR on the target QP and raise a recv CQE."""
        qp = self.qps.get(dst_qpn)
        if qp is None:
            return WcStatus.REM_INV_REQ_ERR
        if qp.rnr_retry < 7:
            # Bounded receiver-not-ready policy: NAK + rnr_timer wait per
            # attempt, giving up after rnr_retry retries.  The default
            # (7) is the IB "retry forever" sentinel, which keeps the
            # seed's block-until-posted behavior.
            tries = 0
            while qp._rq_len() == 0:
                tries += 1
                if tries > qp.rnr_retry:
                    qp.rnr_stalls += 1
                    return WcStatus.RNR_RETRY_EXC_ERR
                qp.rnr_stalls += 1
                yield self.sim.timeout(self.params.qp_rnr_timer_us)
        recv_wr: RecvWR = yield qp._rq_get()
        status = WcStatus.SUCCESS
        if payload:
            if recv_wr.mr is None or recv_wr.length < len(payload):
                status = WcStatus.LOC_LEN_ERR
            else:
                pages = recv_wr.mr.page_ids(recv_wr.offset, len(payload))
                cost = self.rnic.key_lookup_cost(recv_wr.mr.lkey)
                cost += self.rnic.pte_lookup_cost(pages)
                yield from self.rnic.process(cost, dma_bytes=len(payload))
                recv_wr.mr.write(recv_wr.offset, payload)
        tracer = self.sim.tracer
        cspan = (tracer.begin("cq.completion", node=self.node.node_id)
                 if tracer is not None else None)
        yield self.sim.timeout(self.params.rnic_completion_us)
        if qp.recv_cq is None:
            if cspan is not None:
                tracer.end(cspan)
            return status
        qp.recv_cq.push(
            WorkCompletion(
                wr_id=recv_wr.wr_id,
                status=status,
                opcode=opcode,
                byte_len=byte_len if status is WcStatus.SUCCESS else 0,
                imm=imm,
                qp_num=dst_qpn,
                src_node=src_node,
                src_qpn=src_qpn,
            )
        )
        if cspan is not None:
            tracer.end(cspan)
        return status
