"""Queue pairs and the RDMA datapath.

Each posted work request becomes an independent simulation process that
walks the real pipeline: doorbell → local RNIC (QP/key/PTE lookups +
DMA) → wire → remote RNIC (lookups + DMA + actual memory access) →
ACK → CQE.  SRAM-cache misses are spent inside the RNIC pipeline, so
they consume NIC throughput exactly as on real hardware.

Supported: RC (all ops incl. one-sided and atomics), UC (write/send,
unacked), UD (send only, MTU-bound, per-WR destination).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..hw.fabric import TransferDropped
from ..sim import Process, Resource, Simulator, Store
from .wr import (
    ACK_BYTES,
    Access,
    Opcode,
    RecvWR,
    SendWR,
    UD_MTU,
    WcStatus,
    WorkCompletion,
    wire_bytes,
)

__all__ = ["QueuePair", "SharedReceiveQueue"]

_ONE_SIDED = (Opcode.WRITE, Opcode.WRITE_IMM, Opcode.READ)
_ATOMICS = (Opcode.FETCH_ADD, Opcode.CMP_SWAP)
# Opcodes that carry an outbound payload (hoisted: the tuple would
# otherwise be rebuilt from three attribute loads per executed WR).
_PAYLOAD_OPS = (Opcode.WRITE, Opcode.WRITE_IMM, Opcode.SEND)


class SharedReceiveQueue:
    """An SRQ: one recv-buffer pool shared by many QPs (Verbs SRQ)."""

    def __init__(self, sim: Simulator):
        self._store = Store(sim)
        self.posted = 0

    def post_recv(self, wr: RecvWR) -> None:
        """Add one receive buffer to the shared pool."""
        self.posted += 1
        self._store.put(wr)

    def get(self):
        """Event yielding the next posted RecvWR (FIFO)."""
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)


class QueuePair:
    """One send/recv queue pair on a device."""

    def __init__(
        self,
        device,
        qpn: int,
        qp_type: str,
        pd,
        send_cq,
        recv_cq,
        max_send_wr: int = 1024,
        srq: Optional[SharedReceiveQueue] = None,
    ):
        if qp_type not in ("RC", "UC", "UD"):
            raise ValueError(f"unknown QP type {qp_type!r}")
        self.device = device
        self.sim: Simulator = device.sim
        self.qpn = qpn
        self.qp_type = qp_type
        self._is_rc = qp_type == "RC"
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.srq = srq
        self._own_rq: Store = Store(self.sim)
        self._sq_slots = Resource(self.sim, capacity=max_send_wr)
        # RC/UC responder ordering: operations of one QP execute at the
        # remote node in *posting order* (the transport guarantee LITE's
        # ring protocol and FaRM-style memory polling both rely on).
        # Implemented as a completion chain assigned at post time; UD is
        # unordered by spec.
        self._last_remote_done = None
        self.remote: Optional[Tuple[int, int]] = None  # (node_id, qpn)
        # Lazily built per-(QP, op, size-class) cost table for the
        # run-to-completion fast path (see verbs/fastpath.py).
        self._fp_table = None
        self.posted_sends = 0
        self.posted_recvs = 0
        self.rnr_stalls = 0
        self.retries = 0
        # Collapsed IB state machine: the RESET->INIT->RTR->RTS ladder is
        # folded into "RTS" (connection setup cost is paid elsewhere);
        # what matters for failure semantics is RTS vs ERROR.
        self.state = "RTS"
        params = device.params
        self.timeout_us = params.qp_timeout_us
        self.retry_cnt = params.qp_retry_cnt
        self.rnr_retry = params.qp_rnr_retry

    # -- connection -----------------------------------------------------
    def bringup(self):
        """Pay this endpoint's connection-setup cost (generator).

        The collapsed state machine folds RESET->INIT->RTR->RTS into
        "RTS" for failure semantics, which historically made every
        connection free and instant.  The control plane still has to
        pay for the ladder: one ibv_create_qp kernel call plus three
        ibv_modify_qp hops, charged in the caller's timeline — exactly
        the cost QP pooling (cluster/qp_pool.py) exists to amortize.
        """
        params = self.device.params
        cost = params.qp_create_us + 3 * params.qp_transition_us
        yield self.sim.timeout(cost)
        self.device.node.cpu.charge("qp-bringup", cost)

    def connect(self, remote_node_id: int, remote_qpn: int) -> None:
        """Point this RC/UC QP at its remote peer (RTS)."""
        if self.qp_type == "UD":
            raise ValueError("UD QPs are connectionless")
        self.remote = (remote_node_id, remote_qpn)

    def modify_qp(self, timeout_us: Optional[float] = None,
                  retry_cnt: Optional[int] = None,
                  rnr_retry: Optional[int] = None) -> None:
        """Adjust the transport retry attributes (ibv_modify_qp subset)."""
        if timeout_us is not None:
            self.timeout_us = timeout_us
        if retry_cnt is not None:
            self.retry_cnt = retry_cnt
        if rnr_retry is not None:
            self.rnr_retry = rnr_retry

    def reset(self) -> None:
        """Recover an errored QP (RESET -> ... -> RTS cycle, collapsed).

        WRs posted while the QP sat in ERROR have already flushed; the
        connection itself (peer addressing) is retained, as LITE re-uses
        its shared QPs after recovery rather than re-handshaking.
        """
        self.state = "RTS"
        self._invalidate_fastpath()
        # Defensive: a fused IMM chain counts its in-flight delivery in
        # recv_cq.fp_pending and may leave a poll-bypass window armed.
        # If the QP errored mid-chain those deliveries flushed with the
        # rest of the queue; stale counters would make every later
        # fused-eligibility check (fp_pending == 0) fail forever and a
        # stale bypass window could swallow a legitimate poll.  The
        # flush already drained the CQEs, so zeroing here is a pure
        # reset of fast-path bookkeeping.
        recv_cq = self.recv_cq
        if recv_cq is not None:
            recv_cq.fp_pending = 0
            recv_cq.fp_bypass = False

    def _enter_error(self) -> None:
        self.state = "ERROR"
        self._invalidate_fastpath()

    def _invalidate_fastpath(self) -> None:
        """Drop primed cost tables on a state transition.

        Bumps *both* RNICs' ``cost_version`` so any table stamped
        against either end (including the peer's reverse-direction
        tables) dies, and drops this QP's own table eagerly.  State
        transitions only happen under injected faults, so the fast and
        slow runs see identical invalidations — no-fault runs never
        reach here and stay bit-identical.
        """
        self._fp_table = None
        self.device.rnic.fence()
        if self.remote is not None:
            remote_node = self.device.node.fabric.nodes.get(self.remote[0])
            if remote_node is not None:
                remote_node.rnic.fence()

    # -- receive side ----------------------------------------------------
    def post_recv(self, wr: RecvWR) -> None:
        """Post a receive buffer (to the SRQ when attached)."""
        self.posted_recvs += 1
        if self.srq is not None:
            self.srq.post_recv(wr)
        else:
            self._own_rq.put(wr)

    def _rq_get(self):
        source = self.srq if self.srq is not None else self._own_rq
        if len(source) == 0:
            self.rnr_stalls += 1
        return source.get()

    def _rq_len(self) -> int:
        return len(self.srq if self.srq is not None else self._own_rq)

    # -- send side ---------------------------------------------------------
    def _prepare(self, wr: SendWR, dst: Optional[Tuple[int, int]]):
        """Validate a WR and claim its ordering-chain slot; returns dst."""
        if self.qp_type == "UD":
            if dst is None:
                raise ValueError("UD post_send needs a destination address handle")
            if wr.opcode is not Opcode.SEND:
                raise ValueError("UD supports only SEND")
            if wr.length > UD_MTU:
                raise ValueError(f"UD payload {wr.length} exceeds MTU {UD_MTU}")
        else:
            if self.remote is None:
                raise ValueError("QP is not connected")
            dst = self.remote
        if self.qp_type == "UC" and wr.opcode in (Opcode.READ,) + _ATOMICS:
            raise ValueError(f"UC does not support {wr.opcode.value}")
        for sge in wr.sgl:
            if sge.mr.pd is not self.pd:
                raise ValueError("sge MR belongs to a different PD")
            if sge.mr.deregistered:
                raise ValueError("sge MR is deregistered")
        self.posted_sends += 1
        predecessor = None
        if self.qp_type != "UD":
            predecessor = self._last_remote_done
            self._last_remote_done = self.sim.event()
            wr._order_done = self._last_remote_done
        return dst, predecessor

    def post_send(self, wr: SendWR, dst: Optional[Tuple[int, int]] = None) -> Process:
        """Post a work request; returns the in-flight op as a Process.

        ``dst`` is the (node_id, qpn) address handle, required for UD and
        ignored for connected QPs.
        """
        dst, predecessor = self._prepare(wr, dst)
        return self.sim.process(
            self._execute(wr, dst, predecessor), name=f"qp{self.qpn}-send"
        )

    def post_send_batch(
        self, wrs, dst: Optional[Tuple[int, int]] = None
    ) -> list:
        """Post a chain of work requests behind shared doorbells.

        Models ibv_post_send with a linked WR list (§5.2 amortization):
        WRs are chunked by ``params.doorbell_batch``, the first WR of
        each chunk pays the single MMIO doorbell and the followers ride
        it.  Posting order — and therefore the RC/UC remote-execution
        order — is preserved across the whole chain.  Returns one
        Process per WR.  With ``doorbell_batch=1`` this is timing-
        identical to a loop of :meth:`post_send`.
        """
        batch = max(1, self.device.params.doorbell_batch)
        processes = []
        doorbell = None
        for index, wr in enumerate(wrs):
            wr_dst, predecessor = self._prepare(wr, dst)
            doorbell_wait = doorbell_fire = None
            if batch > 1:
                if index % batch == 0:
                    doorbell = self.sim.event()
                    doorbell_fire = doorbell
                else:
                    doorbell_wait = doorbell
            processes.append(
                self.sim.process(
                    self._execute(
                        wr, wr_dst, predecessor, doorbell_wait, doorbell_fire
                    ),
                    name=f"qp{self.qpn}-send",
                )
            )
        return processes

    # -- datapath ------------------------------------------------------------
    def _gather(self, wr: SendWR):
        data = wr.inline_data
        if data is not None:
            # Zero-copy: inline payloads pass through as-is (bytes or
            # memoryview); the sink copies once at scatter time.
            if isinstance(data, (bytes, memoryview)):
                return data
            return bytes(data)
        sgl = wr.sgl
        if len(sgl) == 1:
            sge = sgl[0]
            return sge.mr.read(sge.offset, sge.length)
        return b"".join(sge.mr.read(sge.offset, sge.length) for sge in sgl)

    def _scatter(self, wr: SendWR, payload) -> None:
        if not wr.sgl:
            wr.return_data = payload
            return
        if len(wr.sgl) == 1 and len(payload) == wr.sgl[0].length:
            sge = wr.sgl[0]
            sge.mr.write(sge.offset, payload)
            return
        view = memoryview(payload)
        cursor = 0
        for sge in wr.sgl:
            sge.mr.write(sge.offset, view[cursor : cursor + sge.length])
            cursor += sge.length

    def _local_lookup_cost(self, wr: SendWR, rnic) -> float:
        """SRAM cost of resolving the local QP + every local SGE."""
        cost = rnic.qp_lookup_cost(self.qpn)
        for sge in wr.sgl:
            cost += rnic.key_lookup_cost(sge.mr.lkey)
            cost += rnic.pte_lookup_cost(sge.mr.page_ids(sge.offset, sge.length))
        return cost

    def _transfer_retry(self, fabric, src: int, dst: int, nbytes: int):
        """One wire leg with RC retransmission (generator).

        Returns ``"ok"`` on delivery, ``"lost"`` for unacked transports
        (UC/UD: the sender never learns), or ``"error"`` when an RC QP
        exhausts ``retry_cnt`` — the QP enters the ERROR state, as per
        the IB spec.  Each failed RC attempt waits the local ACK timeout
        before retransmitting.
        """
        attempts = 0
        while True:
            try:
                yield from fabric.transfer(src, dst, nbytes, self.qpn)
                return "ok"
            except TransferDropped:
                if not self._is_rc:
                    return "lost"
                attempts += 1
                if attempts > self.retry_cnt:
                    self._enter_error()
                    return "error"
                self.retries += 1
                yield self.sim.timeout(self.timeout_us)

    def _execute(self, wr: SendWR, dst: Tuple[int, int], predecessor=None,
                 doorbell_wait=None, doorbell_fire=None):
        sim, params = self.sim, self.device.params
        fabric = self.device.node.fabric
        src_node = self.device.node.node_id
        dst_node, dst_qpn = dst

        tracer = sim.tracer
        span = None
        if tracer is not None:
            # Whole WR lifetime, including the SQ-slot wait.
            span = tracer.begin("qp.wqe", node=src_node, nbytes=wr.length,
                                qpn=self.qpn, opcode=wr.opcode.value,
                                dst=dst_node)
        yield self._sq_slots.request()
        status = WcStatus.WR_FLUSH_ERR
        byte_len = 0
        try:
            if self.state == "ERROR":
                # QP sits in the error state: flush without touching the
                # wire (requires a reset() to recover).
                status = WcStatus.WR_FLUSH_ERR
            else:
                status, byte_len = yield from self._execute_rts(
                    wr, fabric, src_node, dst_node, dst_qpn, predecessor,
                    doorbell_wait, doorbell_fire
                )

            # Requester CQE.
            if wr.signaled or status is not WcStatus.SUCCESS:
                cspan = (tracer.begin("cq.completion", node=src_node)
                         if tracer is not None else None)
                yield sim.timeout(params.rnic_completion_us)
                wc = WorkCompletion(
                    wr_id=wr.wr_id,
                    status=status,
                    opcode=wr.opcode,
                    byte_len=byte_len,
                    imm=wr.imm,
                    qp_num=self.qpn,
                )
                if self.send_cq is not None:
                    self.send_cq.push(wc)
                if cspan is not None:
                    tracer.end(cspan)
            return status
        finally:
            # Failure paths must still unblock the responder-ordering
            # chain and any delivery waiter, or successors deadlock.
            done = wr._order_done
            if done is not None and not done.triggered:
                done.succeed()
            if wr.delivered is not None and not wr.delivered.triggered:
                wr.delivered.succeed(status)
            # A batch leader that flushed before ringing must still wake
            # its followers, or they wait on the doorbell forever.
            if doorbell_fire is not None and not doorbell_fire.triggered:
                doorbell_fire.succeed()
            self._sq_slots.release()
            if span is not None:
                tracer.end(span, outcome=status.value)

    def _execute_rts(self, wr: SendWR, fabric, src_node: int, dst_node: int,
                     dst_qpn: int, predecessor, doorbell_wait=None,
                     doorbell_fire=None):
        sim, params = self.sim, self.device.params
        tracer = sim.tracer

        # 1. Doorbell: MMIO post over PCIe.  In a batched post the chunk
        # leader pays the one MMIO and rings the shared event; followers
        # ride it for free.
        if doorbell_wait is None:
            dspan = (tracer.begin("qp.doorbell", node=src_node, qpn=self.qpn)
                     if tracer is not None else None)
            yield sim.timeout(params.rnic_doorbell_us)
            if doorbell_fire is not None:
                doorbell_fire.succeed()
            if dspan is not None:
                tracer.end(dspan)
        elif not doorbell_wait.processed:
            dspan = (tracer.begin("qp.doorbell", node=src_node, qpn=self.qpn,
                                  chained=True)
                     if tracer is not None else None)
            yield doorbell_wait
            if dspan is not None:
                tracer.end(dspan)
        elif tracer is not None:
            tracer.instant("qp.doorbell", node=src_node, qpn=self.qpn,
                           chained=True)

        # 2. Local RNIC: lookups + payload DMA from host memory.
        rnic = self.device.rnic
        opcode = wr.opcode
        payload = b""
        outbound_dma = 0
        if opcode in _PAYLOAD_OPS:
            payload = self._gather(wr)
            outbound_dma = len(payload)
        cost = self._local_lookup_cost(wr, rnic)
        yield from rnic.process(cost, dma_bytes=outbound_dma)

        # 3. Wire out: headers per MTU; READ/atomics send a request only.
        if opcode is Opcode.READ:
            out_bytes = wire_bytes(0)
        elif opcode in _ATOMICS:
            out_bytes = wire_bytes(16)  # operands ride in the header
        else:
            out_bytes = wire_bytes(len(payload))
        if self.qp_type == "UD":
            out_bytes += params.rnic_ud_header_bytes
        sent = yield from self._transfer_retry(
            fabric, src_node, dst_node, out_bytes
        )
        if sent == "error":
            return WcStatus.RETRY_EXC_ERR, 0
        if sent == "lost":
            # UC/UD silent loss: the request dies on the wire but the
            # sender's completion still means "sent".
            return WcStatus.SUCCESS, 0

        # 4. Remote execution: for RC/UC, strictly after the
        # previous WR on this QP finished executing remotely.
        remote_device = fabric.nodes[dst_node].device
        if predecessor is not None and not predecessor.processed:
            yield predecessor
        try:
            status, byte_len, return_payload = yield from remote_device.inbound(
                opcode, src_node, self.qpn, dst_qpn, wr.rkey, wr.remote_addr,
                payload, wr.imm, wr.length, wr.compare_add, wr.swap,
                self.qp_type,
            )
        finally:
            done = wr._order_done
            if done is not None and not done.triggered:
                done.succeed()

        if wr.delivered is not None and not wr.delivered.triggered:
            wr.delivered.succeed(status)

        if status is WcStatus.RNR_RETRY_EXC_ERR and self._is_rc:
            # Receiver stayed not-ready past the RNR budget: fatal for
            # the connection, exactly like a transport retry blowout.
            self._enter_error()
            return status, 0

        # 5. Response path: RC acks everything; READ/atomics return data.
        if opcode is Opcode.READ and status is WcStatus.SUCCESS:
            back = yield from self._transfer_retry(
                fabric, dst_node, src_node, wire_bytes(len(return_payload))
            )
            if back == "error":
                return WcStatus.RETRY_EXC_ERR, 0
            # Local RNIC scatters the response into the SGL.
            cost = rnic.qp_lookup_cost(self.qpn)
            yield from rnic.process(cost, dma_bytes=len(return_payload))
            self._scatter(wr, return_payload)
        elif opcode in _ATOMICS and status is WcStatus.SUCCESS:
            back = yield from self._transfer_retry(
                fabric, dst_node, src_node, wire_bytes(8)
            )
            if back == "error":
                return WcStatus.RETRY_EXC_ERR, 0
            yield from rnic.process(0.0, dma_bytes=8)
            self._scatter(wr, return_payload)
        elif self._is_rc:
            back = yield from self._transfer_retry(
                fabric, dst_node, src_node, ACK_BYTES
            )
            if back == "error":
                return WcStatus.RETRY_EXC_ERR, 0
            yield sim.timeout(params.rnic_ack_us)
        # UC/UD: fire and forget; completion means "sent".

        return status, byte_len

    def __repr__(self) -> str:
        return (
            f"QP(qpn={self.qpn}, {self.qp_type}, node={self.device.node.node_id}, "
            f"remote={self.remote})"
        )
