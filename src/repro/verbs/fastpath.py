"""Run-to-completion fast paths for uncontended one- and two-sided ops.

The generator datapath walks ~10 frames per op (`api` → `kernel` → `qp`
→ `rnic` → `fabric`), each suspension costing a scheduler round trip —
even when nothing can actually block.  This module detects that
uncontended case at post time and executes the whole op as arithmetic:
the timeline every layer *would* produce is computed from a per-QP cost
table, the synchronous state transitions are applied immediately, and
the handful of transitions that land later (resource releases, the
responder-order event, CQE delivery) are scheduled as *batch dispatches*
on the engine's fast-path queue (`Simulator.fp_schedule`) — one callable
per distinct instant instead of one event per transition.

Two-sided traffic fuses one step further: when a write-imm lands on a
LITE kernel whose batch==1 poller is parked on the destination CQ, the
receiver's poll iteration itself joins the chain.  The CQE bypasses the
CQ store (its delivery counters are replayed), the parked poller is
never resumed, and a final dispatch at the exact instant the poller's
discovery delay would have elapsed replays the iteration's CPU charges
and hands the CQE to the *real* ``kernel._dispatch_wc`` — from which
point request parsing, the ring-head advance, handler wakeup, and the
reply write all run the ordinary code (and the reply's own write-imm
can fuse again on the way back).  The cross-node cost chain is stamped
by both ends: the ``CostTable`` folds in both nodes' SimParams/RNIC
versions, and ``kernel.fp_rpc_gate`` checks the live server-ring
geometry (bound ring, in-bounds non-wrapping offset, live peer) per
commit.

Soundness rests on two pillars:

1. **Real holds.**  Every resource the op would occupy (SQ slot, QP
   window, both RNIC pipelines, the four port channels) is acquired with
   a real ``in_use`` increment at commit and released by a real
   ``release()`` at the exact instant the slow path would release it.
   A concurrent op that falls back to the generator path therefore
   queues and wakes exactly as it would against a slow holder.

2. **The horizon check.**  An op commits only when the now-queue is
   empty and no ordinary event is scheduled before the op's completion
   time (`Simulator.fp_horizon`).  Until the op finishes, the only
   actors in the simulation are this op's own batch dispatches and those
   of previously committed fast ops — so no third party can observe the
   (slightly widened) hold windows or the eagerly-applied counters.

What still deviates, by design (all counter/LRU-state end-equivalent,
none timing-visible under the horizon check; see INTERNALS §13):
cache recency is replayed at commit time rather than at the lookup
instants, and byte counters (fabric/RNIC/port) are applied at commit.
Residual mismodels (a resource found full at an acquire instant, an SRQ
drained by a foreign consumer mid-flight) are counted in ``fp_stats``.

Sequence-counter padding: ``Simulator._seq`` doubles as the benchmark
event counter, and every grant/timeout the slow path would have enqueued
bumps it.  A fast commit bumps ``_seq`` by the number of enqueues it
*avoided* so the final count — and the absolute (time, seq) order of all
surviving events — is identical with the fast path on or off.  The
per-opcode pad constants below are derived in-line; the equivalence
tests assert final ``_seq`` equality against ``REPRO_NO_FASTPATH=1``.
"""

from __future__ import annotations

from heapq import heappush

from .wr import ACK_BYTES, Access, Opcode, WcStatus, WorkCompletion, wire_bytes

__all__ = ["try_fast_post", "prime_qp", "fp_stats", "FastPathStats"]

_NEED_REMOTE_WRITE = Access.REMOTE_WRITE.value
_NEED_REMOTE_READ = Access.REMOTE_READ.value
_WIRE0 = wire_bytes(0)

# Size-class memo bound per cost table: distinct payload sizes seen on
# one QP.  Benchmarks use a handful of sizes; a pathological size sweep
# clears and rebuilds rather than growing without bound.
_MEMO_MAX = 512

# Enqueues the generator path performs per op that the fast path does
# not, below the LITE layer (callers add their own layer's pad).
#
# Slow-path enqueues from post_send() onward, common prefix (11):
#   exec-process boot, SQ-slot grant, doorbell timeout, local-pipeline
#   grant, local-RNIC timeout, src-TX grant, dst-RX grant, serialization
#   timeout, propagation timeout, remote-pipeline grant, remote-RNIC
#   timeout.
# Plus per opcode:
#   WRITE:     order-done, ACK leg (tx, rx, ser, prop, rnic-ack) = 6,
#              exec-process succeed                     → 18 total
#   WRITE_IMM: recv-queue grant, recv-completion timeout, order-done,
#              ACK leg = 5, exec-process succeed        → 20 total
#   READ:      order-done, response leg (tx, rx, ser, prop) = 4,
#              2nd local pipeline grant + timeout = 2,
#              exec-process succeed                     → 20 total
# (+1 completion timeout when signaled.)
#
# Fast-path real enqueues (fp_schedule bumps _seq once per dispatch,
# order-done succeeds for real; the completion handle is accounted by
# the caller's pad):
#   WRITE:     5 dispatches + order-done = 6   → pad 18 - 6  = 12
#   WRITE_IMM: 6 dispatches + order-done = 7   → pad 20 - 7  = 13
#   READ:      7 dispatches + order-done = 8   → pad 20 - 8  = 11 (+1 sig)
_CORE_PAD = {Opcode.WRITE: 12, Opcode.WRITE_IMM: 13, Opcode.READ: 11}

# A *fused* two-sided WRITE_IMM spends one extra dispatch (the deferred
# kernel dispatch at t_disp) → 7 dispatches + order-done = 8 real, so
# its commit-time pad is one less than plain WRITE_IMM's: 12.  The two
# receiver-side enqueues it avoids — the CQ-getter succeed that wakes
# the parked poller and the poller's discovery timeout, both at t_rc —
# are padded *at t_rc by the at_rc dispatch itself*, and only if the
# receiver is still cleanly parked then (an interloping CQE may have
# woken the poller mid-chain, in which case at_rc reverts to a real
# push and the receiver events all happen — and count — for real).
# Healthy fused total: 12 + 8 + 2 = 22 = plain 20 + wake + discovery.
# Everything from the dispatch instant onward (handler wakeup, head
# write, reply) is real code, identical in both modes: no pad.
_FUSED_IMM_PAD = 12


class FastPathStats:
    """Module-wide fast-path telemetry (host-side only, not sim state)."""

    __slots__ = ("attempts", "commits", "mismodels", "table_builds")

    def __init__(self):
        self.attempts = 0
        self.commits = 0
        self.mismodels = 0
        self.table_builds = 0

    def reset(self) -> None:
        self.attempts = 0
        self.commits = 0
        self.mismodels = 0
        self.table_builds = 0

    def __repr__(self) -> str:
        return (f"FastPathStats(attempts={self.attempts}, "
                f"commits={self.commits}, mismodels={self.mismodels})")


fp_stats = FastPathStats()


class CostTable:
    """Per-(QP, op-kind, size-class) precomputed cost constants.

    Built lazily at first fast post (or eagerly via :func:`prime_qp`),
    keyed by the versions of every input it folds in: the local, remote,
    and fabric ``SimParams`` mutation counters plus both RNICs'
    ``cost_version`` (bumped on MR invalidation and cache resize, which
    also rotate the cache objects referenced here).  Per-size costs are
    memoised in ``_sizes``: size → (local RNIC occupancy, remote RNIC
    occupancy, wire serialization), each the bit-exact float expression
    the generator path computes per WQE.
    """

    __slots__ = (
        "qp", "remote", "stamp", "fabric", "rdev", "rqp",
        "lrnic", "rrnic", "lpipe", "rpipe", "src_port", "dst_port",
        "src_tx", "src_rx", "dst_tx", "dst_rx",
        "src_node", "dst_node", "dst_qpn",
        "doorbell", "wqe_l", "ser0", "prop", "ack_ser", "rnic_ack",
        "completion_l", "completion_r", "srq_source", "srq_items",
        "_lparams", "_rparams", "_fparams", "_link_bw", "_sizes",
        "_spans", "_phys", "_mem",
    )

    def __init__(self, qp):
        device = qp.device
        node = device.node
        fabric = node.fabric
        dst_node, dst_qpn = qp.remote
        rnode = fabric.nodes.get(dst_node)
        if rnode is None:
            raise KeyError(dst_node)
        rdev = rnode.device
        lparams = device.params
        rparams = rdev.params
        fparams = fabric.params
        lrnic = device.rnic
        rrnic = rdev.rnic

        self.qp = qp
        self.remote = qp.remote
        self.fabric = fabric
        self.rdev = rdev
        self.rqp = rdev.qps.get(dst_qpn)
        self.lrnic = lrnic
        self.rrnic = rrnic
        self.lpipe = lrnic._pipeline
        self.rpipe = rrnic._pipeline
        self.src_node = node.node_id
        self.dst_node = dst_node
        self.dst_qpn = dst_qpn
        src_port = fabric.ports.get(node.node_id)
        dst_port = fabric.ports.get(dst_node)
        if src_port is None or dst_port is None:
            raise KeyError(dst_node)
        self.src_port = src_port
        self.dst_port = dst_port
        self.src_tx = src_port.tx
        self.src_rx = src_port.rx
        self.dst_tx = dst_port.tx
        self.dst_rx = dst_port.rx

        self.doorbell = lparams.rnic_doorbell_us
        self.wqe_l = lparams.rnic_wqe_process_us
        link_bw = fparams.link_bandwidth_bytes_per_us
        self._link_bw = link_bw
        self.ser0 = _WIRE0 / link_bw
        # Same expression shape as fabric._transfer_impl's inlined
        # one_way_fabric_us (bit-exact float parity).
        self.prop = (2 * fparams.link_propagation_us
                     + fparams.switch_latency_us)
        self.ack_ser = ACK_BYTES / link_bw
        self.rnic_ack = lparams.rnic_ack_us
        self.completion_l = lparams.rnic_completion_us
        self.completion_r = rparams.rnic_completion_us

        self._lparams = lparams
        self._rparams = rparams
        self._fparams = fparams
        self._sizes = {}
        # (rkey, addr, nbytes, need) → resolved span.  MR identity,
        # bounds, access bits, and the page list are immutable for a
        # live registration (deregistration bumps the remote RNIC's
        # cost_version, stamped below, invalidating the whole table);
        # the backing resolution carries the host allocator's free
        # epoch and is revalidated with one compare per hit.
        self._spans = {}
        # rkey → (mr, base_addr, end_addr) for *physical* MRs (the LITE
        # global MR): identity and bounds are immutable for a live
        # registration and every address is in-reach, so only the
        # backing resolution (allocator-epoch dependent) runs per
        # attempt.  Deregistration bumps cost_version → whole table
        # (and this cache) is dropped.
        self._phys = {}
        self._mem = rnode.memory
        # Receive-queue source for inbound WRITE_IMM, resolved lazily
        # and revalidated by identity per attempt.
        self.srq_source = None
        self.srq_items = None
        self.stamp = self._current_stamp()
        fp_stats.table_builds += 1

    def _current_stamp(self):
        return (
            self._lparams._version,
            self._rparams._version,
            self._fparams._version,
            self.lrnic.cost_version,
            self.rrnic.cost_version,
        )

    def valid(self) -> bool:
        """True while every folded-in input is unchanged."""
        return (self.remote == self.qp.remote
                and self.stamp == self._current_stamp())

    def size_costs(self, nbytes: int):
        """(local occupancy, remote occupancy, serialization, wire bytes).

        Bit-exact to the slow path: occupancy is
        ``rnic_wqe_process_us + dma_time(nbytes)`` (the all-hit lookup
        cost is exactly ``0.0``, and ``x + 0.0 == x``), serialization is
        ``wire_bytes(nbytes) / link_bandwidth`` in one division, as in
        ``fabric._transfer_impl``.
        """
        entry = self._sizes.get(nbytes)
        if entry is None:
            if len(self._sizes) >= _MEMO_MAX:
                self._sizes.clear()
            lp = self._lparams
            rp = self._rparams
            wire = wire_bytes(nbytes)
            entry = self._sizes[nbytes] = (
                lp.rnic_wqe_process_us + lp.dma_time(nbytes),
                rp.rnic_wqe_process_us + rp.dma_time(nbytes),
                wire / self._link_bw,
                wire,
            )
        return entry


def _table_for(qp):
    table = qp._fp_table
    if table is not None and table.valid():
        return table
    try:
        table = CostTable(qp)
    except KeyError:
        return None
    qp._fp_table = table
    return table


def prime_qp(qp) -> bool:
    """Build (or revalidate) a QP's cost table eagerly.

    Called at connection setup, and again each time a pooled QP is
    leased to a session (cluster/qp_pool.py): a conn that sat parked
    across a fence — peer crash, MR dereg, cache resize — re-primes
    here instead of paying the table-build stall on the new holder's
    first op.  A still-valid table is kept as-is.  Returns True when a
    valid table is in place afterwards.  Host-side only: priming never
    advances simulated time, so fast and slow runs stay bit-identical.
    """
    if qp._is_rc and qp.remote is not None:
        return _table_for(qp) is not None
    return False


def try_fast_post(qp, wr, window=None, extra_pad=0, make_handle=False):
    """Attempt run-to-completion execution of ``wr`` on ``qp``.

    Returns the completion event (``make_handle=True``; it succeeds with
    the WcStatus at the op's completion instant), ``True`` on a
    committed fire-and-forget op, or ``None`` when any entry condition
    fails — in which case *no state has been touched* and the caller
    must take the generator path.

    ``window`` is the LITE per-QP window resource to hold for the op's
    lifetime; ``extra_pad`` is the caller layer's avoided-enqueue count
    (see the pad ledger above).
    """
    sim = qp.sim
    if not sim.fastpath_enabled or sim.tracer is not None:
        return None
    fp_stats.attempts += 1

    opcode = wr.opcode
    if opcode is Opcode.WRITE or opcode is Opcode.WRITE_IMM:
        payload = wr.inline_data
        if payload is None or wr.sgl:
            return None
        nbytes = len(payload)
        if nbytes == 0:
            return None
    elif opcode is Opcode.READ:
        if wr.sgl or wr.inline_data is not None:
            return None
        payload = None
        nbytes = wr.read_length
        if nbytes <= 0:
            return None
    else:
        return None

    if (not qp._is_rc or qp.state != "RTS" or qp.remote is None
            or wr.delivered is not None):
        return None
    pred = qp._last_remote_done
    if pred is not None and pred.callbacks is not None:
        return None
    sq = qp._sq_slots
    if sq.in_use >= sq.capacity:
        return None
    if window is not None and window.in_use >= window.capacity:
        return None
    if sim._nowq:
        return None

    table = _table_for(qp)
    if table is None:
        return None
    if table.src_node == table.dst_node:
        return None  # loopback short-circuits the wire; keep it slow
    fabric = table.fabric
    if fabric.fault is not None:
        return None
    src_port = table.src_port
    dst_port = table.dst_port
    if not src_port.up or not dst_port.up:
        return None
    # Belt and suspenders against a dead/remapped peer: a crash downs
    # the link (caught above) and fences every table (cost_version), but
    # a *rebuilt* table toward a crashed-flag node must still decline.
    if table.rdev.node.crashed:
        return None
    src_tx = table.src_tx
    dst_rx = table.dst_rx
    dst_tx = table.dst_tx
    src_rx = table.src_rx
    if src_tx.in_use or dst_rx.in_use or dst_tx.in_use or src_rx.in_use:
        return None
    lpipe = table.lpipe
    rpipe = table.rpipe
    if lpipe.in_use >= lpipe.capacity or rpipe.in_use >= rpipe.capacity:
        return None

    # All SRAM lookups must hit, so every lookup cost is exactly 0.0 and
    # the precomputed occupancies apply.  Probes are non-mutating; the
    # hits are replayed (for LRU recency and stats) at commit below.
    lrnic = table.lrnic
    rrnic = table.rrnic
    dst_qpn = table.dst_qpn
    if not lrnic.qp_cache.contains(qp.qpn):
        return None
    if not rrnic.qp_cache.contains(dst_qpn):
        return None
    rkey = wr.rkey
    if not rrnic.key_cache.contains(rkey):
        return None

    rdev = table.rdev
    need = _NEED_REMOTE_READ if opcode is Opcode.READ else _NEED_REMOTE_WRITE
    addr = wr.remote_addr
    # Inline replay of rdev._resolve_remote.  Physical MRs (the LITE
    # global MR — every RPC/ring address) see a fresh address on most
    # posts, so the per-span memo would miss and churn; their immutable
    # identity/bounds are cached per rkey instead and only the backing
    # resolution (allocator-epoch dependent) runs per attempt.
    phys = table._phys.get(rkey)
    if phys is not None:
        mr, base, end = phys
        if mr.deregistered:
            return None
        if not (base <= addr and addr + nbytes <= end):
            return None
        if not (mr._access_bits & need):
            return None
        pages = ()
        try:
            backing, reg_off = mr._backing(addr - base, nbytes)
        except ValueError:
            return None
    else:
        span = table._spans.get((rkey, addr, nbytes, need))
        if span is not None and span[3] == table._mem.version:
            mr, offset, pages, _epoch, backing, reg_off = span
        else:
            mr = rdev.mrs_by_rkey.get(rkey)
            if mr is None or mr.deregistered:
                return None
            base = mr.base_addr
            if not (base <= addr and addr + nbytes <= base + mr.size):
                return None
            if not (mr._access_bits & need):
                return None
            offset = addr - base
            try:
                backing, reg_off = mr._backing(offset, nbytes)
            except ValueError:
                return None
            if mr.physical:
                pages = ()
                table._phys[rkey] = (mr, base, base + mr.size)
            else:
                pages = tuple(mr.page_ids(offset, nbytes))
                spans = table._spans
                if len(spans) >= _MEMO_MAX:
                    spans.clear()
                spans[(rkey, addr, nbytes, need)] = (
                    mr, offset, pages, table._mem.version, backing, reg_off,
                )
    if pages and not rrnic.pte_cache.contains_all(pages):
        return None

    rqp = srq_source = srq_items = None
    fused_kernel = fcq = None
    if opcode is Opcode.WRITE_IMM:
        rqp = table.rqp
        if rqp is None or rqp is not rdev.qps.get(dst_qpn):
            rqp = rdev.qps.get(dst_qpn)
            table.rqp = rqp
            if rqp is None:
                return None
        srq_source = rqp.srq if rqp.srq is not None else rqp._own_rq
        if srq_source is not table.srq_source:
            try:
                srq_source._fp_claims
            except AttributeError:
                srq_source._fp_claims = 0
            table.srq_source = srq_source
            store = getattr(srq_source, "_store", srq_source)
            table.srq_items = store.items
        srq_items = table.srq_items
        if len(srq_source) <= srq_source._fp_claims:
            return None
        # Fused two-sided delivery: eligible when the destination is a
        # LITE kernel whose batch==1 poll loop is the sole parked getter
        # on this recv CQ, no earlier fused delivery is outstanding, and
        # the kernel's RPC gate accepts the immediate (bound ring,
        # in-bounds non-wrapping offset, live peer — the server-ring
        # geometry half of the cross-node stamp, checked live).  When
        # ineligible the chain still commits in the one-sided shape:
        # the CQE push wakes the poller for real.
        imm = wr.imm
        if imm is not None:
            lite = rdev.node.lite
            if (lite is not None and lite._poller is not None
                    and lite.params.cq_poll_batch <= 1):
                fcq = rqp.recv_cq
                if fcq is not lite.recv_cq or fcq.fp_pending:
                    fcq = None
                else:
                    cq_store = fcq._store
                    if (not cq_store.items
                            and len(cq_store._getters) == 1
                            and lite.fp_rpc_gate(
                                imm, table.src_node, wr.remote_addr)):
                        fused_kernel = lite
                    else:
                        fcq = None

    # ---- timeline (floats accumulated in the slow path's add order) ----
    dur_l, dur_r, ser, wire_n = table.size_costs(nbytes)
    t0 = sim.now
    t1 = t0 + table.doorbell            # doorbell MMIO
    if opcode is Opcode.READ:
        t2 = t1 + table.wqe_l           # request WQE carries no payload
        t3 = t2 + table.ser0
    else:
        t2 = t1 + dur_l                 # local lookups + payload DMA
        t3 = t2 + ser                   # serialization out
    t4 = t3 + table.prop                # propagation + switch
    t5 = t4 + dur_r                     # remote lookups + DMA + memory op
    signaled = wr.signaled
    if opcode is Opcode.WRITE:
        a1 = t5 + table.ack_ser
        t7 = (a1 + table.prop) + table.rnic_ack
        t_end = t7 + table.completion_l if signaled else t7
    elif opcode is Opcode.WRITE_IMM:
        t_rc = t5 + table.completion_r  # responder CQE write-back
        a1 = t_rc + table.ack_ser
        t7 = (a1 + table.prop) + table.rnic_ack
        t_end = t7 + table.completion_l if signaled else t7
        if fused_kernel is not None:
            # Deferred kernel dispatch: the exact instant the poller's
            # discovery delay would have elapsed after the CQE landed.
            t_disp = t_rc + fused_kernel.params.poll_loop_us / 2
    else:  # READ
        r1 = t5 + ser                   # response serialization
        t6 = r1 + table.prop
        t7 = t6 + dur_l                 # local scatter pass
        t_end = t7 + table.completion_l if signaled else t7

    # Nothing ordinary may be scheduled at or before completion: any
    # such event could observe (or perturb) the op mid-flight.  A fused
    # chain's horizon spans both hosts — it must also cover the remote
    # dispatch instant (fp_horizon is already cluster-global: there is
    # one engine, so "no ordinary event before the chain's tail" is a
    # statement about every node at once).
    t_guard = t_end
    if fused_kernel is not None and t_disp > t_guard:
        t_guard = t_disp
    if sim.fp_horizon() <= t_guard:
        return None

    # ---- commit ------------------------------------------------------
    fp_stats.commits += 1
    qp.posted_sends += 1
    done = sim.event()
    qp._last_remote_done = done
    wr._order_done = done

    # Cache-hit replay, in slow-path lookup order (LRU recency + stats).
    lrnic.qp_cache.access(qp.qpn)
    rrnic.qp_cache.access(dst_qpn)
    rrnic.key_cache.access(rkey)
    if pages:
        rrnic.pte_cache.access_many(pages)
    if opcode is Opcode.READ:
        lrnic.qp_cache.access(qp.qpn)   # response scatter pass

    # Counter replay (end-state equivalent; see module docstring).
    if opcode is Opcode.READ:
        lrnic.wqe_count += 2
        lrnic.bytes_dma += nbytes
        rrnic.wqe_count += 1
        rrnic.bytes_dma += nbytes
        out_bytes = _WIRE0
        back_bytes = wire_n
    else:
        lrnic.wqe_count += 1
        lrnic.bytes_dma += nbytes
        rrnic.wqe_count += 1
        rrnic.bytes_dma += nbytes
        out_bytes = wire_n
        back_bytes = ACK_BYTES
    fabric.total_bytes += out_bytes + back_bytes
    fabric.transfer_count += 2
    src_port.tx_bytes += out_bytes
    dst_port.rx_bytes += out_bytes
    dst_port.tx_bytes += back_bytes
    src_port.rx_bytes += back_bytes

    # Real holds for the op's first phase (released at exact times by
    # the dispatches below; the return-leg channels are acquired at the
    # instant the slow path would request them).
    sq.in_use += 1
    if window is not None:
        window.in_use += 1
    lpipe.in_use += 1
    rpipe.in_use += 1
    src_tx.in_use += 1
    dst_rx.in_use += 1
    if srq_source is not None:
        srq_source._fp_claims += 1
    if fused_kernel is not None:
        # One outstanding fused delivery per CQ: cleared by the at_disp
        # dispatch; new fused commits decline while it is set.
        fcq.fp_pending += 1

    handle = sim.event() if make_handle else None
    # fp_schedule inlined (this is the hottest dispatch source): the pad
    # is applied first, then each push takes the next seq, exactly as a
    # sim._seq bump followed by fp_schedule calls in program order.
    core_pad = _CORE_PAD[opcode] if fused_kernel is None else _FUSED_IMM_PAD
    seq = sim._seq + core_pad + (1 if signaled else 0) + extra_pad
    fpq = sim._fpq

    def at_t2():
        lpipe.release()

    def at_t3():
        dst_rx.release()
        src_tx.release()

    seq += 1
    heappush(fpq, (t2, seq, at_t2))
    seq += 1
    heappush(fpq, (t3, seq, at_t3))

    def at_end():
        send_cq = qp.send_cq
        if signaled and send_cq is not None:
            send_cq.push(WorkCompletion(
                wr_id=wr.wr_id, status=WcStatus.SUCCESS, opcode=opcode,
                byte_len=nbytes, imm=wr.imm, qp_num=qp.qpn,
            ))
        sq.release()
        if window is not None:
            window.release()
        if handle is not None:
            handle.succeed(WcStatus.SUCCESS)

    if opcode is Opcode.WRITE:

        def at_mid():
            rpipe.release()
            try:
                backing.write(reg_off, payload)
            except ValueError:
                fp_stats.mismodels += 1
            done.succeed()
            if dst_tx.in_use >= dst_tx.capacity:
                fp_stats.mismodels += 1
            if src_rx.in_use >= src_rx.capacity:
                fp_stats.mismodels += 1
            dst_tx.in_use += 1
            src_rx.in_use += 1

        def at_ackrel():
            src_rx.release()
            dst_tx.release()

        seq += 1
        heappush(fpq, (t5, seq, at_mid))
        seq += 1
        heappush(fpq, (a1, seq, at_ackrel))
        seq += 1
        heappush(fpq, (t_end, seq, at_end))

    elif opcode is Opcode.WRITE_IMM:
        box = []
        src_node = table.src_node
        imm = wr.imm

        def at_mid():
            rpipe.release()
            try:
                backing.write(reg_off, payload)
            except ValueError:
                fp_stats.mismodels += 1
            if srq_items:
                box.append(srq_items.popleft())
            else:
                fp_stats.mismodels += 1
            srq_source._fp_claims -= 1

        if fused_kernel is None:

            def at_rc():
                if box:
                    recv_cq = rqp.recv_cq
                    if recv_cq is not None:
                        recv_cq.push(WorkCompletion(
                            wr_id=box[0].wr_id, status=WcStatus.SUCCESS,
                            opcode=Opcode.RECV_IMM, byte_len=nbytes, imm=imm,
                            qp_num=dst_qpn, src_node=src_node, src_qpn=qp.qpn,
                        ))
                done.succeed()
                if dst_tx.in_use >= dst_tx.capacity:
                    fp_stats.mismodels += 1
                if src_rx.in_use >= src_rx.capacity:
                    fp_stats.mismodels += 1
                dst_tx.in_use += 1
                src_rx.in_use += 1

        else:
            # Fused delivery: the CQE bypasses the CQ store (the parked
            # poller must not wake); its delivery counters are replayed
            # at the push instant and at_disp hands it to the real
            # kernel dispatch.  The bypass is re-validated at t_rc: an
            # interloping CQE (e.g. a small op overtaking this one on
            # the second RNIC pipeline unit) may have woken the poller
            # mid-chain, in which case the slow path would have
            # *appended* this CQE behind it — at_rc then reverts to a
            # real push and every receiver event happens for real.
            wcbox = []

            def at_rc():
                if box:
                    wc = WorkCompletion(
                        wr_id=box[0].wr_id, status=WcStatus.SUCCESS,
                        opcode=Opcode.RECV_IMM, byte_len=nbytes, imm=imm,
                        qp_num=dst_qpn, src_node=src_node, src_qpn=qp.qpn,
                    )
                    fstore = fcq._store
                    if len(fstore._getters) == 1 and not fstore.items:
                        # Receiver still (or again) cleanly parked: the
                        # slow path would consume the getter right now.
                        # Replay the delivery counters, arm the bypass
                        # window, and pad the two enqueues the slow
                        # path performs at this instant (getter succeed
                        # + the poller's discovery timeout).
                        wc.completed_at = t_rc
                        fcq.pushed += 1
                        fcq.polled += 1
                        fcq.fp_bypass = True
                        sim._seq += 2
                        wcbox.append(wc)
                    else:
                        # Poller is awake (or has a backlog): land in
                        # the store exactly as the slow path would.
                        fcq.push(wc)
                done.succeed()
                if dst_tx.in_use >= dst_tx.capacity:
                    fp_stats.mismodels += 1
                if src_rx.in_use >= src_rx.capacity:
                    fp_stats.mismodels += 1
                dst_tx.in_use += 1
                src_rx.in_use += 1

            def at_disp():
                if wcbox:
                    # t_rc is passed through verbatim: the wait charge
                    # must be computed as (t_rc - park), never via
                    # sim.now - discover (float addition is not
                    # associative; the slow path charges at t_rc).
                    fused_kernel._fp_deliver(wcbox[0], t_rc)
                else:
                    # Reverted (or SRQ mismodel): the real machinery
                    # owns delivery; just retire the commit claim.
                    fcq.fp_pending -= 1

        def at_ackrel():
            src_rx.release()
            dst_tx.release()

        seq += 1
        heappush(fpq, (t5, seq, at_mid))
        seq += 1
        heappush(fpq, (t_rc, seq, at_rc))
        seq += 1
        heappush(fpq, (a1, seq, at_ackrel))
        if fused_kernel is not None:
            seq += 1
            heappush(fpq, (t_disp, seq, at_disp))
        seq += 1
        heappush(fpq, (t_end, seq, at_end))

    else:  # READ
        box = []

        def at_mid():
            rpipe.release()
            try:
                box.append(backing.read(reg_off, nbytes))
            except ValueError:
                box.append(b"")
                fp_stats.mismodels += 1
            done.succeed()
            if dst_tx.in_use >= dst_tx.capacity:
                fp_stats.mismodels += 1
            if src_rx.in_use >= src_rx.capacity:
                fp_stats.mismodels += 1
            dst_tx.in_use += 1
            src_rx.in_use += 1

        def at_resprel():
            src_rx.release()
            dst_tx.release()

        def at_t6():
            if lpipe.in_use >= lpipe.capacity:
                fp_stats.mismodels += 1
            lpipe.in_use += 1

        def at_t7():
            lpipe.release()
            wr.return_data = box[0] if box else b""

        seq += 1
        heappush(fpq, (t5, seq, at_mid))
        seq += 1
        heappush(fpq, (r1, seq, at_resprel))
        seq += 1
        heappush(fpq, (t6, seq, at_t6))
        seq += 1
        heappush(fpq, (t7, seq, at_t7))
        seq += 1
        heappush(fpq, (t_end, seq, at_end))

    sim._seq = seq
    return handle if make_handle else True
