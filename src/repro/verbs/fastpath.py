"""Run-to-completion fast paths for uncontended one- and two-sided ops.

The generator datapath walks ~10 frames per op (`api` → `kernel` → `qp`
→ `rnic` → `fabric`), each suspension costing a scheduler round trip —
even when nothing can actually block.  This module detects that
uncontended case at post time and executes the whole op as arithmetic:
the timeline every layer *would* produce is computed from a per-QP cost
table, the synchronous state transitions are applied immediately, and
the handful of transitions that land later (resource releases, the
responder-order event, CQE delivery) are scheduled as *batch dispatches*
on the engine's fast-path queue (`Simulator.fp_schedule`) — one callable
per distinct instant instead of one event per transition.

Two-sided traffic fuses one step further: when a write-imm lands on a
LITE kernel whose batch==1 poller is parked on the destination CQ, the
receiver's poll iteration itself joins the chain.  The CQE bypasses the
CQ store (its delivery counters are replayed), the parked poller is
never resumed, and a final dispatch at the exact instant the poller's
discovery delay would have elapsed replays the iteration's CPU charges
and hands the CQE to the *real* ``kernel._dispatch_wc`` — from which
point request parsing, the ring-head advance, handler wakeup, and the
reply write all run the ordinary code (and the reply's own write-imm
can fuse again on the way back).  The cross-node cost chain is stamped
by both ends: the ``CostTable`` folds in both nodes' SimParams/RNIC
versions, and ``kernel.fp_rpc_gate`` checks the live server-ring
geometry (bound ring, in-bounds non-wrapping offset, live peer) per
commit.

Soundness rests on two pillars:

1. **Real holds.**  Every resource the op would occupy (SQ slot, QP
   window, both RNIC pipelines, the four port channels) is acquired with
   a real ``in_use`` increment at commit and released by a real
   ``release()`` at the exact instant the slow path would release it.
   A concurrent op that falls back to the generator path therefore
   queues and wakes exactly as it would against a slow holder.

2. **The horizon check.**  An op commits only when the now-queue is
   empty and no ordinary event is scheduled before the op's completion
   time (`Simulator.fp_horizon`).  Until the op finishes, the only
   actors in the simulation are this op's own batch dispatches and those
   of previously committed fast ops — so no third party can observe the
   (slightly widened) hold windows or the eagerly-applied counters.

What still deviates, by design (all counter/LRU-state end-equivalent,
none timing-visible under the horizon check; see INTERNALS §13):
cache recency is replayed at commit time rather than at the lookup
instants, and byte counters (fabric/RNIC/port) are applied at commit.
Residual mismodels (a resource found full at an acquire instant, an SRQ
drained by a foreign consumer mid-flight) are counted in ``fp_stats``.

Sequence-counter padding: ``Simulator._seq`` doubles as the benchmark
event counter, and every grant/timeout the slow path would have enqueued
bumps it.  A fast commit bumps ``_seq`` by the number of enqueues it
*avoided* so the final count — and the absolute (time, seq) order of all
surviving events — is identical with the fast path on or off.  The
per-opcode pad constants below are derived in-line; the equivalence
tests assert final ``_seq`` equality against ``REPRO_NO_FASTPATH=1``.
"""

from __future__ import annotations

from heapq import heappop, heappush

from .wr import (ACK_BYTES, Access, Opcode, SendWR, WcStatus, WorkCompletion,
                 wire_bytes)

__all__ = ["try_fast_post", "try_fast_post_vec", "try_fast_chain",
           "prime_qp", "fp_stats", "FastPathStats"]

_NEED_REMOTE_WRITE = Access.REMOTE_WRITE.value
_NEED_REMOTE_READ = Access.REMOTE_READ.value
_WIRE0 = wire_bytes(0)

# Size-class memo bound per cost table: distinct payload sizes seen on
# one QP.  Benchmarks use a handful of sizes; a pathological size sweep
# clears and rebuilds rather than growing without bound.
_MEMO_MAX = 512

# Enqueues the generator path performs per op that the fast path does
# not, below the LITE layer (callers add their own layer's pad).
#
# Slow-path enqueues from post_send() onward, common prefix (11):
#   exec-process boot, SQ-slot grant, doorbell timeout, local-pipeline
#   grant, local-RNIC timeout, src-TX grant, dst-RX grant, serialization
#   timeout, propagation timeout, remote-pipeline grant, remote-RNIC
#   timeout.
# Plus per opcode:
#   WRITE:     order-done, ACK leg (tx, rx, ser, prop, rnic-ack) = 6,
#              exec-process succeed                     → 18 total
#   WRITE_IMM: recv-queue grant, recv-completion timeout, order-done,
#              ACK leg = 5, exec-process succeed        → 20 total
#   READ:      order-done, response leg (tx, rx, ser, prop) = 4,
#              2nd local pipeline grant + timeout = 2,
#              exec-process succeed                     → 20 total
# (+1 completion timeout when signaled.)
#
# Fast-path real enqueues (fp_schedule bumps _seq once per dispatch,
# order-done succeeds for real; the completion handle is accounted by
# the caller's pad):
#   WRITE:     5 dispatches + order-done = 6   → pad 18 - 6  = 12
#   WRITE_IMM: 6 dispatches + order-done = 7   → pad 20 - 7  = 13
#   READ:      7 dispatches + order-done = 8   → pad 20 - 8  = 11 (+1 sig)
_CORE_PAD = {Opcode.WRITE: 12, Opcode.WRITE_IMM: 13, Opcode.READ: 11}
# Hoisted scalars for the chain entry (skips the dict lookup).
_CORE_PAD_WRITE = 12
_CORE_PAD_WRITE_IMM = 13

# A *fused* two-sided WRITE_IMM spends one extra dispatch (the deferred
# kernel dispatch at t_disp) → 7 dispatches + order-done = 8 real, so
# its commit-time pad is one less than plain WRITE_IMM's: 12.  The two
# receiver-side enqueues it avoids — the CQ-getter succeed that wakes
# the parked poller and the poller's discovery timeout, both at t_rc —
# are padded *at t_rc by the at_rc dispatch itself*, and only if the
# receiver is still cleanly parked then (an interloping CQE may have
# woken the poller mid-chain, in which case at_rc reverts to a real
# push and the receiver events all happen — and count — for real).
# Healthy fused total: 12 + 8 + 2 = 22 = plain 20 + wake + discovery.
# Everything from the dispatch instant onward (handler wakeup, head
# write, reply) is real code, identical in both modes: no pad.
_FUSED_IMM_PAD = 12


class FastPathStats:
    """Module-wide fast-path telemetry (host-side only, not sim state)."""

    __slots__ = ("attempts", "commits", "mismodels", "table_builds",
                 "vec_attempts", "vec_commits", "plan_builds", "plan_hits",
                 "chain_attempts", "chain_commits")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.attempts = 0
        self.commits = 0
        self.mismodels = 0
        self.table_builds = 0
        self.vec_attempts = 0
        self.vec_commits = 0
        self.plan_builds = 0
        self.plan_hits = 0
        self.chain_attempts = 0
        self.chain_commits = 0

    def __repr__(self) -> str:
        return (f"FastPathStats(attempts={self.attempts}, "
                f"commits={self.commits}, mismodels={self.mismodels}, "
                f"vec_commits={self.vec_commits})")


fp_stats = FastPathStats()


class CostTable:
    """Per-(QP, op-kind, size-class) precomputed cost constants.

    Built lazily at first fast post (or eagerly via :func:`prime_qp`),
    keyed by the versions of every input it folds in: the local, remote,
    and fabric ``SimParams`` mutation counters plus both RNICs'
    ``cost_version`` (bumped on MR invalidation and cache resize, which
    also rotate the cache objects referenced here).  Per-size costs are
    memoised in ``_sizes``: size → (local RNIC occupancy, remote RNIC
    occupancy, wire serialization), each the bit-exact float expression
    the generator path computes per WQE.
    """

    __slots__ = (
        "qp", "remote", "stamp", "fabric", "rdev", "rqp",
        "lrnic", "rrnic", "lpipe", "rpipe", "src_port", "dst_port",
        "src_tx", "src_rx", "dst_tx", "dst_rx",
        "src_node", "dst_node", "dst_qpn",
        "doorbell", "wqe_l", "ser0", "prop", "ack_ser", "rnic_ack",
        "completion_l", "completion_r", "srq_source", "srq_items",
        "_lparams", "_rparams", "_fparams", "_link_bw", "_sizes",
        "_spans", "_phys", "_pregions", "_mem", "_plans",
        "_rel_t2", "_rel_t3", "_rel_back", "_chain_end",
    )

    def __init__(self, qp):
        device = qp.device
        node = device.node
        fabric = node.fabric
        dst_node, dst_qpn = qp.remote
        rnode = fabric.nodes.get(dst_node)
        if rnode is None:
            raise KeyError(dst_node)
        rdev = rnode.device
        lparams = device.params
        rparams = rdev.params
        fparams = fabric.params
        lrnic = device.rnic
        rrnic = rdev.rnic

        self.qp = qp
        self.remote = qp.remote
        self.fabric = fabric
        self.rdev = rdev
        self.rqp = rdev.qps.get(dst_qpn)
        self.lrnic = lrnic
        self.rrnic = rrnic
        self.lpipe = lrnic._pipeline
        self.rpipe = rrnic._pipeline
        self.src_node = node.node_id
        self.dst_node = dst_node
        self.dst_qpn = dst_qpn
        src_port = fabric.ports.get(node.node_id)
        dst_port = fabric.ports.get(dst_node)
        if src_port is None or dst_port is None:
            raise KeyError(dst_node)
        self.src_port = src_port
        self.dst_port = dst_port
        self.src_tx = src_port.tx
        self.src_rx = src_port.rx
        self.dst_tx = dst_port.tx
        self.dst_rx = dst_port.rx

        self.doorbell = lparams.rnic_doorbell_us
        self.wqe_l = lparams.rnic_wqe_process_us
        link_bw = fparams.link_bandwidth_bytes_per_us
        self._link_bw = link_bw
        self.ser0 = _WIRE0 / link_bw
        # Same expression shape as fabric._transfer_impl's inlined
        # one_way_fabric_us (bit-exact float parity).
        self.prop = (2 * fparams.link_propagation_us
                     + fparams.switch_latency_us)
        self.ack_ser = ACK_BYTES / link_bw
        self.rnic_ack = lparams.rnic_ack_us
        self.completion_l = lparams.rnic_completion_us
        self.completion_r = rparams.rnic_completion_us

        self._lparams = lparams
        self._rparams = rparams
        self._fparams = fparams
        self._sizes = {}
        # (rkey, addr, nbytes, need) → resolved span.  MR identity,
        # bounds, access bits, and the page list are immutable for a
        # live registration (deregistration bumps the remote RNIC's
        # cost_version, stamped below, invalidating the whole table);
        # the backing resolution carries the host allocator's free
        # epoch and is revalidated with one compare per hit.
        self._spans = {}
        # rkey → (mr, base_addr, end_addr) for *physical* MRs (the LITE
        # global MR): identity and bounds are immutable for a live
        # registration and every address is in-reach, so only the
        # backing resolution (allocator-epoch dependent) runs per
        # attempt.  Deregistration bumps cost_version → whole table
        # (and this cache) is dropped.
        self._phys = {}
        # rkey → (region, lo, hi): last backing region hit for a
        # *physical* MR.  The global MR spans the whole remote heap, so
        # ``mr._backing`` bisects the allocator's live list per attempt;
        # ring/head slots hit the same region every op, so one cached
        # (region, bounds) triple — validated by ``region.freed`` plus
        # containment — replaces the bisect.  A freed-then-reused range
        # can never serve stale: free() flips the flag on the old object.
        self._pregions = {}
        self._mem = rnode.memory
        # Vectorized multi-chunk plans registered against this table
        # (see try_fast_post_vec): key → VecPlan.  Residency only — the
        # table's stamp dropping (fence, dereg, param change) drops the
        # registry; each use revalidates through mapping.plan_version
        # and the per-piece backing epochs.
        self._plans = {}
        # Receive-queue source for inbound WRITE_IMM, resolved lazily
        # and revalidated by identity per attempt.
        self.srq_source = None
        self.srq_items = None
        # Shared dispatch callables: the t2/t3/ack-release bodies are
        # identical for every commit on this table, so one instance
        # each replaces a per-commit closure build (a measurable slice
        # of the RPC tri-post chain's residual).
        self._rel_t2 = self.lpipe.release

        def _rel_t3(rx=self.dst_rx.release, tx=self.src_tx.release):
            rx()
            tx()

        self._rel_t3 = _rel_t3

        def _rel_back(rx=self.src_rx.release, tx=self.dst_tx.release):
            rx()
            tx()

        self._rel_back = _rel_back
        self._chain_end = None
        self.stamp = self._current_stamp()
        fp_stats.table_builds += 1

    def _current_stamp(self):
        return (
            self._lparams._version,
            self._rparams._version,
            self._fparams._version,
            self.lrnic.cost_version,
            self.rrnic.cost_version,
        )

    def valid(self) -> bool:
        """True while every folded-in input is unchanged."""
        return (self.remote == self.qp.remote
                and self.stamp == self._current_stamp())

    def size_costs(self, nbytes: int):
        """(local occupancy, remote occupancy, serialization, wire bytes).

        Bit-exact to the slow path: occupancy is
        ``rnic_wqe_process_us + dma_time(nbytes)`` (the all-hit lookup
        cost is exactly ``0.0``, and ``x + 0.0 == x``), serialization is
        ``wire_bytes(nbytes) / link_bandwidth`` in one division, as in
        ``fabric._transfer_impl``.
        """
        entry = self._sizes.get(nbytes)
        if entry is None:
            if len(self._sizes) >= _MEMO_MAX:
                self._sizes.clear()
            lp = self._lparams
            rp = self._rparams
            wire = wire_bytes(nbytes)
            entry = self._sizes[nbytes] = (
                lp.rnic_wqe_process_us + lp.dma_time(nbytes),
                rp.rnic_wqe_process_us + rp.dma_time(nbytes),
                wire / self._link_bw,
                wire,
            )
        return entry


def _table_for(qp):
    table = qp._fp_table
    if table is not None and table.valid():
        return table
    try:
        table = CostTable(qp)
    except KeyError:
        return None
    qp._fp_table = table
    return table


def prime_qp(qp) -> bool:
    """Build (or revalidate) a QP's cost table eagerly.

    Called at connection setup, and again each time a pooled QP is
    leased to a session (cluster/qp_pool.py): a conn that sat parked
    across a fence — peer crash, MR dereg, cache resize — re-primes
    here instead of paying the table-build stall on the new holder's
    first op.  A still-valid table is kept as-is.  Returns True when a
    valid table is in place afterwards.  Host-side only: priming never
    advances simulated time, so fast and slow runs stay bit-identical.
    """
    if qp._is_rc and qp.remote is not None:
        return _table_for(qp) is not None
    return False


def try_fast_post(qp, wr, window=None, extra_pad=0, make_handle=False):
    """Attempt run-to-completion execution of ``wr`` on ``qp``.

    Returns the completion event (``make_handle=True``; it succeeds with
    the WcStatus at the op's completion instant), ``True`` on a
    committed fire-and-forget op, or ``None`` when any entry condition
    fails — in which case *no state has been touched* and the caller
    must take the generator path.

    ``window`` is the LITE per-QP window resource to hold for the op's
    lifetime; ``extra_pad`` is the caller layer's avoided-enqueue count
    (see the pad ledger above).
    """
    sim = qp.sim
    if not sim.fastpath_enabled or sim.tracer is not None:
        return None
    fp_stats.attempts += 1

    opcode = wr.opcode
    if opcode is Opcode.WRITE or opcode is Opcode.WRITE_IMM:
        payload = wr.inline_data
        if payload is None or wr.sgl:
            return None
        nbytes = len(payload)
        if nbytes == 0:
            return None
    elif opcode is Opcode.READ:
        if wr.sgl or wr.inline_data is not None:
            return None
        payload = None
        nbytes = wr.read_length
        if nbytes <= 0:
            return None
    else:
        return None

    if (not qp._is_rc or qp.state != "RTS" or qp.remote is None
            or wr.delivered is not None):
        return None
    pred = qp._last_remote_done
    if pred is not None and pred.callbacks is not None:
        return None
    sq = qp._sq_slots
    if sq.in_use >= sq.capacity:
        return None
    if window is not None and window.in_use >= window.capacity:
        return None
    if sim._nowq:
        return None

    table = _table_for(qp)
    if table is None:
        return None
    if table.src_node == table.dst_node:
        return None  # loopback short-circuits the wire; keep it slow
    fabric = table.fabric
    if fabric.fault is not None:
        return None
    src_port = table.src_port
    dst_port = table.dst_port
    if not src_port.up or not dst_port.up:
        return None
    # Belt and suspenders against a dead/remapped peer: a crash downs
    # the link (caught above) and fences every table (cost_version), but
    # a *rebuilt* table toward a crashed-flag node must still decline.
    if table.rdev.node.crashed:
        return None
    src_tx = table.src_tx
    dst_rx = table.dst_rx
    dst_tx = table.dst_tx
    src_rx = table.src_rx
    if src_tx.in_use or dst_rx.in_use or dst_tx.in_use or src_rx.in_use:
        return None
    lpipe = table.lpipe
    rpipe = table.rpipe
    if lpipe.in_use >= lpipe.capacity or rpipe.in_use >= rpipe.capacity:
        return None

    # All SRAM lookups must hit, so every lookup cost is exactly 0.0 and
    # the precomputed occupancies apply.  Probes are non-mutating; the
    # hits are replayed (for LRU recency and stats) at commit below.
    lrnic = table.lrnic
    rrnic = table.rrnic
    dst_qpn = table.dst_qpn
    if not lrnic.qp_cache.contains(qp.qpn):
        return None
    if not rrnic.qp_cache.contains(dst_qpn):
        return None
    rkey = wr.rkey
    if not rrnic.key_cache.contains(rkey):
        return None

    rdev = table.rdev
    need = _NEED_REMOTE_READ if opcode is Opcode.READ else _NEED_REMOTE_WRITE
    addr = wr.remote_addr
    # Inline replay of rdev._resolve_remote.  Physical MRs (the LITE
    # global MR — every RPC/ring address) see a fresh address on most
    # posts, so the per-span memo would miss and churn; their immutable
    # identity/bounds are cached per rkey instead and only the backing
    # resolution (allocator-epoch dependent) runs per attempt.
    phys = table._phys.get(rkey)
    if phys is not None:
        mr, base, end = phys
        if mr.deregistered:
            return None
        if not (base <= addr and addr + nbytes <= end):
            return None
        if not (mr._access_bits & need):
            return None
        pages = ()
        preg = table._pregions.get(rkey)
        if (preg is not None and not preg[0].freed
                and preg[1] <= addr and addr + nbytes <= preg[2]):
            backing = preg[0]
            reg_off = addr - preg[1]
        else:
            try:
                backing, reg_off = mr._backing(addr - base, nbytes)
            except ValueError:
                return None
            table._pregions[rkey] = (
                backing, backing.addr, backing.addr + backing.size)
    else:
        span = table._spans.get((rkey, addr, nbytes, need))
        if span is not None and span[3] == table._mem.version:
            mr, offset, pages, _epoch, backing, reg_off = span
        else:
            mr = rdev.mrs_by_rkey.get(rkey)
            if mr is None or mr.deregistered:
                return None
            base = mr.base_addr
            if not (base <= addr and addr + nbytes <= base + mr.size):
                return None
            if not (mr._access_bits & need):
                return None
            offset = addr - base
            try:
                backing, reg_off = mr._backing(offset, nbytes)
            except ValueError:
                return None
            if mr.physical:
                pages = ()
                table._phys[rkey] = (mr, base, base + mr.size)
            else:
                pages = tuple(mr.page_ids(offset, nbytes))
                spans = table._spans
                if len(spans) >= _MEMO_MAX:
                    spans.clear()
                spans[(rkey, addr, nbytes, need)] = (
                    mr, offset, pages, table._mem.version, backing, reg_off,
                )
    if pages and not rrnic.pte_cache.contains_all(pages):
        return None

    rqp = srq_source = srq_items = None
    fused_kernel = fcq = None
    if opcode is Opcode.WRITE_IMM:
        rqp = table.rqp
        if rqp is None or rqp is not rdev.qps.get(dst_qpn):
            rqp = rdev.qps.get(dst_qpn)
            table.rqp = rqp
            if rqp is None:
                return None
        srq_source = rqp.srq if rqp.srq is not None else rqp._own_rq
        if srq_source is not table.srq_source:
            try:
                srq_source._fp_claims
            except AttributeError:
                srq_source._fp_claims = 0
            table.srq_source = srq_source
            store = getattr(srq_source, "_store", srq_source)
            table.srq_items = store.items
        srq_items = table.srq_items
        if len(srq_source) <= srq_source._fp_claims:
            return None
        # Fused two-sided delivery: eligible when the destination is a
        # LITE kernel whose batch==1 poll loop is the sole parked getter
        # on this recv CQ, no earlier fused delivery is outstanding, and
        # the kernel's RPC gate accepts the immediate (bound ring,
        # in-bounds non-wrapping offset, live peer — the server-ring
        # geometry half of the cross-node stamp, checked live).  When
        # ineligible the chain still commits in the one-sided shape:
        # the CQE push wakes the poller for real.
        imm = wr.imm
        if imm is not None:
            lite = rdev.node.lite
            if (lite is not None and lite._poller is not None
                    and lite.params.cq_poll_batch <= 1):
                fcq = rqp.recv_cq
                if fcq is not lite.recv_cq or fcq.fp_pending:
                    fcq = None
                else:
                    cq_store = fcq._store
                    if (not cq_store.items
                            and len(cq_store._getters) == 1
                            and lite.fp_rpc_gate(
                                imm, table.src_node, wr.remote_addr)):
                        fused_kernel = lite
                    else:
                        fcq = None

    # ---- timeline (floats accumulated in the slow path's add order) ----
    dur_l, dur_r, ser, wire_n = table.size_costs(nbytes)
    t0 = sim.now
    t1 = t0 + table.doorbell            # doorbell MMIO
    if opcode is Opcode.READ:
        t2 = t1 + table.wqe_l           # request WQE carries no payload
        t3 = t2 + table.ser0
    else:
        t2 = t1 + dur_l                 # local lookups + payload DMA
        t3 = t2 + ser                   # serialization out
    t4 = t3 + table.prop                # propagation + switch
    t5 = t4 + dur_r                     # remote lookups + DMA + memory op
    signaled = wr.signaled
    if opcode is Opcode.WRITE:
        a1 = t5 + table.ack_ser
        t7 = (a1 + table.prop) + table.rnic_ack
        t_end = t7 + table.completion_l if signaled else t7
    elif opcode is Opcode.WRITE_IMM:
        t_rc = t5 + table.completion_r  # responder CQE write-back
        a1 = t_rc + table.ack_ser
        t7 = (a1 + table.prop) + table.rnic_ack
        t_end = t7 + table.completion_l if signaled else t7
        if fused_kernel is not None:
            # Deferred kernel dispatch: the exact instant the poller's
            # discovery delay would have elapsed after the CQE landed.
            t_disp = t_rc + fused_kernel.params.poll_loop_us / 2
    else:  # READ
        r1 = t5 + ser                   # response serialization
        t6 = r1 + table.prop
        t7 = t6 + dur_l                 # local scatter pass
        t_end = t7 + table.completion_l if signaled else t7

    # Nothing ordinary may be scheduled at or before completion: any
    # such event could observe (or perturb) the op mid-flight.  A fused
    # chain's horizon spans both hosts — it must also cover the remote
    # dispatch instant (fp_horizon is already cluster-global: there is
    # one engine, so "no ordinary event before the chain's tail" is a
    # statement about every node at once).
    t_guard = t_end
    if fused_kernel is not None and t_disp > t_guard:
        t_guard = t_disp
    if sim.fp_horizon() <= t_guard:
        return None

    # ---- commit ------------------------------------------------------
    fp_stats.commits += 1
    qp.posted_sends += 1
    done = sim.event()
    qp._last_remote_done = done
    wr._order_done = done

    # Cache-hit replay, in slow-path lookup order (LRU recency + stats).
    lrnic.qp_cache.access(qp.qpn)
    rrnic.qp_cache.access(dst_qpn)
    rrnic.key_cache.access(rkey)
    if pages:
        rrnic.pte_cache.access_many(pages)
    if opcode is Opcode.READ:
        lrnic.qp_cache.access(qp.qpn)   # response scatter pass

    # Counter replay (end-state equivalent; see module docstring).
    if opcode is Opcode.READ:
        lrnic.wqe_count += 2
        lrnic.bytes_dma += nbytes
        rrnic.wqe_count += 1
        rrnic.bytes_dma += nbytes
        out_bytes = _WIRE0
        back_bytes = wire_n
    else:
        lrnic.wqe_count += 1
        lrnic.bytes_dma += nbytes
        rrnic.wqe_count += 1
        rrnic.bytes_dma += nbytes
        out_bytes = wire_n
        back_bytes = ACK_BYTES
    fabric.total_bytes += out_bytes + back_bytes
    fabric.transfer_count += 2
    src_port.tx_bytes += out_bytes
    dst_port.rx_bytes += out_bytes
    dst_port.tx_bytes += back_bytes
    src_port.rx_bytes += back_bytes

    # Real holds for the op's first phase (released at exact times by
    # the dispatches below; the return-leg channels are acquired at the
    # instant the slow path would request them).
    sq.in_use += 1
    if window is not None:
        window.in_use += 1
    lpipe.in_use += 1
    rpipe.in_use += 1
    src_tx.in_use += 1
    dst_rx.in_use += 1
    if srq_source is not None:
        srq_source._fp_claims += 1
    if fused_kernel is not None:
        # One outstanding fused delivery per CQ: cleared by the at_disp
        # dispatch; new fused commits decline while it is set.
        fcq.fp_pending += 1

    handle = sim.event() if make_handle else None
    # fp_schedule inlined (this is the hottest dispatch source): the pad
    # is applied first, then each push takes the next seq, exactly as a
    # sim._seq bump followed by fp_schedule calls in program order.
    core_pad = _CORE_PAD[opcode] if fused_kernel is None else _FUSED_IMM_PAD
    seq = sim._seq + core_pad + (1 if signaled else 0) + extra_pad
    fpq = sim._fpq

    seq += 1
    heappush(fpq, (t2, seq, table._rel_t2))
    seq += 1
    heappush(fpq, (t3, seq, table._rel_t3))

    def at_end():
        send_cq = qp.send_cq
        if signaled and send_cq is not None:
            send_cq.push(WorkCompletion(
                wr_id=wr.wr_id, status=WcStatus.SUCCESS, opcode=opcode,
                byte_len=nbytes, imm=wr.imm, qp_num=qp.qpn,
            ))
        sq.release()
        if window is not None:
            window.release()
        if handle is not None:
            handle.succeed(WcStatus.SUCCESS)

    if opcode is Opcode.WRITE:

        def at_mid():
            rpipe.release()
            try:
                backing.write(reg_off, payload)
            except ValueError:
                fp_stats.mismodels += 1
            done.succeed()
            if dst_tx.in_use >= dst_tx.capacity:
                fp_stats.mismodels += 1
            if src_rx.in_use >= src_rx.capacity:
                fp_stats.mismodels += 1
            dst_tx.in_use += 1
            src_rx.in_use += 1

        seq += 1
        heappush(fpq, (t5, seq, at_mid))
        seq += 1
        heappush(fpq, (a1, seq, table._rel_back))
        seq += 1
        heappush(fpq, (t_end, seq, at_end))

    elif opcode is Opcode.WRITE_IMM:
        box = []
        src_node = table.src_node
        imm = wr.imm

        def at_mid():
            rpipe.release()
            try:
                backing.write(reg_off, payload)
            except ValueError:
                fp_stats.mismodels += 1
            if srq_items:
                box.append(srq_items.popleft())
            else:
                fp_stats.mismodels += 1
            srq_source._fp_claims -= 1

        if fused_kernel is None:

            def at_rc():
                if box:
                    recv_cq = rqp.recv_cq
                    if recv_cq is not None:
                        recv_cq.push(WorkCompletion(
                            wr_id=box[0].wr_id, status=WcStatus.SUCCESS,
                            opcode=Opcode.RECV_IMM, byte_len=nbytes, imm=imm,
                            qp_num=dst_qpn, src_node=src_node, src_qpn=qp.qpn,
                        ))
                done.succeed()
                if dst_tx.in_use >= dst_tx.capacity:
                    fp_stats.mismodels += 1
                if src_rx.in_use >= src_rx.capacity:
                    fp_stats.mismodels += 1
                dst_tx.in_use += 1
                src_rx.in_use += 1

        else:
            # Fused delivery: the CQE bypasses the CQ store (the parked
            # poller must not wake); its delivery counters are replayed
            # at the push instant and at_disp hands it to the real
            # kernel dispatch.  The bypass is re-validated at t_rc: an
            # interloping CQE (e.g. a small op overtaking this one on
            # the second RNIC pipeline unit) may have woken the poller
            # mid-chain, in which case the slow path would have
            # *appended* this CQE behind it — at_rc then reverts to a
            # real push and every receiver event happens for real.
            wcbox = []

            def at_rc():
                if box:
                    wc = WorkCompletion(
                        wr_id=box[0].wr_id, status=WcStatus.SUCCESS,
                        opcode=Opcode.RECV_IMM, byte_len=nbytes, imm=imm,
                        qp_num=dst_qpn, src_node=src_node, src_qpn=qp.qpn,
                    )
                    fstore = fcq._store
                    if len(fstore._getters) == 1 and not fstore.items:
                        # Receiver still (or again) cleanly parked: the
                        # slow path would consume the getter right now.
                        # Replay the delivery counters, arm the bypass
                        # window, and pad the two enqueues the slow
                        # path performs at this instant (getter succeed
                        # + the poller's discovery timeout).
                        wc.completed_at = t_rc
                        fcq.pushed += 1
                        fcq.polled += 1
                        fcq.fp_bypass = True
                        sim._seq += 2
                        wcbox.append(wc)
                    else:
                        # Poller is awake (or has a backlog): land in
                        # the store exactly as the slow path would.
                        fcq.push(wc)
                done.succeed()
                if dst_tx.in_use >= dst_tx.capacity:
                    fp_stats.mismodels += 1
                if src_rx.in_use >= src_rx.capacity:
                    fp_stats.mismodels += 1
                dst_tx.in_use += 1
                src_rx.in_use += 1

            def at_disp():
                if wcbox:
                    # t_rc is passed through verbatim: the wait charge
                    # must be computed as (t_rc - park), never via
                    # sim.now - discover (float addition is not
                    # associative; the slow path charges at t_rc).
                    fused_kernel._fp_deliver(wcbox[0], t_rc)
                else:
                    # Reverted (or SRQ mismodel): the real machinery
                    # owns delivery; just retire the commit claim.
                    fcq.fp_pending -= 1

        seq += 1
        heappush(fpq, (t5, seq, at_mid))
        seq += 1
        heappush(fpq, (t_rc, seq, at_rc))
        seq += 1
        heappush(fpq, (a1, seq, table._rel_back))
        if fused_kernel is not None:
            seq += 1
            heappush(fpq, (t_disp, seq, at_disp))
        seq += 1
        heappush(fpq, (t_end, seq, at_end))

    else:  # READ
        box = []

        def at_mid():
            rpipe.release()
            try:
                box.append(backing.read(reg_off, nbytes))
            except ValueError:
                box.append(b"")
                fp_stats.mismodels += 1
            done.succeed()
            if dst_tx.in_use >= dst_tx.capacity:
                fp_stats.mismodels += 1
            if src_rx.in_use >= src_rx.capacity:
                fp_stats.mismodels += 1
            dst_tx.in_use += 1
            src_rx.in_use += 1

        def at_t6():
            if lpipe.in_use >= lpipe.capacity:
                fp_stats.mismodels += 1
            lpipe.in_use += 1

        def at_t7():
            lpipe.release()
            wr.return_data = box[0] if box else b""

        seq += 1
        heappush(fpq, (t5, seq, at_mid))
        seq += 1
        heappush(fpq, (r1, seq, table._rel_back))
        seq += 1
        heappush(fpq, (t6, seq, at_t6))
        seq += 1
        heappush(fpq, (t7, seq, at_t7))
        seq += 1
        heappush(fpq, (t_end, seq, at_end))

    sim._seq = seq
    return handle if make_handle else True


def try_fast_chain(engine, peer, addr, data, imm, priority, extra_pad=3):
    """Commit one leg of the RPC tri-post chain (raw unsignaled write).

    Every RPC op issues three fire-and-forget posts through
    ``raw_write_async``: the request append (WRITE_IMM into the server
    ring), the server's head-pointer update (WRITE), and the reply
    (WRITE_IMM into the caller's reply buffer).  Each leg used to pay
    the full generic attempt — a SendWR allocation, the opcode
    dispatch, and the signaled/CQE branches of :func:`try_fast_post`.
    This entry checks the chain's conditions once per leg shape: the
    per-(QP, ring) statics are certified through the CostTable stamp
    system and the physical-MR memo (``_phys``/``_pregions``), and the
    leg commits on the lean unsignaled inline timeline with no WR
    object at all.  Returns True on commit; None leaves no state
    touched — the caller then builds the WR and takes the generator
    path, consuming the same wr_id the chain would have.
    """
    kernel = engine.kernel
    sim = engine.sim
    if not sim.fastpath_enabled or sim.tracer is not None:
        return None
    if sim._nowq:
        return None
    nbytes = len(data)
    if nbytes == 0:
        return None
    fp_stats.chain_attempts += 1

    pairs = kernel.qos.eligible_qps(peer, priority)
    qp, window = pairs[peer._rr % len(pairs)]
    if not qp._is_rc or qp.state != "RTS" or qp.remote is None:
        return None
    pred = qp._last_remote_done
    if pred is not None and pred.callbacks is not None:
        return None
    sq = qp._sq_slots
    if sq.in_use >= sq.capacity:
        return None
    if window.in_use >= window.capacity:
        return None

    table = _table_for(qp)
    if table is None:
        return None
    if table.src_node == table.dst_node:
        return None
    fabric = table.fabric
    if fabric.fault is not None:
        return None
    src_port = table.src_port
    dst_port = table.dst_port
    if not src_port.up or not dst_port.up:
        return None
    if table.rdev.node.crashed:
        return None
    src_tx = table.src_tx
    dst_rx = table.dst_rx
    dst_tx = table.dst_tx
    src_rx = table.src_rx
    if src_tx.in_use or dst_rx.in_use or dst_tx.in_use or src_rx.in_use:
        return None
    lpipe = table.lpipe
    rpipe = table.rpipe
    if lpipe.in_use >= lpipe.capacity or rpipe.in_use >= rpipe.capacity:
        return None

    lrnic = table.lrnic
    rrnic = table.rrnic
    dst_qpn = table.dst_qpn
    rkey = peer.global_rkey
    # contains() inlined (pure membership; the LRU replay happens at
    # commit via access()).
    if (qp.qpn not in lrnic.qp_cache._entries
            or dst_qpn not in rrnic.qp_cache._entries
            or rkey not in rrnic.key_cache._entries):
        return None

    rdev = table.rdev
    # Raw writes always target the peer's physical global MR, so after
    # the first leg the identity/bounds come from the per-rkey memo and
    # only the backing containment check runs per attempt.
    phys = table._phys.get(rkey)
    if phys is not None:
        mr, base, end = phys
        if mr.deregistered:
            return None
        if not (base <= addr and addr + nbytes <= end):
            return None
        if not (mr._access_bits & _NEED_REMOTE_WRITE):
            return None
        pages = ()
        preg = table._pregions.get(rkey)
        if (preg is not None and not preg[0].freed
                and preg[1] <= addr and addr + nbytes <= preg[2]):
            backing = preg[0]
            reg_off = addr - preg[1]
        else:
            try:
                backing, reg_off = mr._backing(addr - base, nbytes)
            except ValueError:
                return None
            table._pregions[rkey] = (
                backing, backing.addr, backing.addr + backing.size)
    else:
        mr = rdev.mrs_by_rkey.get(rkey)
        if mr is None or mr.deregistered:
            return None
        base = mr.base_addr
        if not (base <= addr and addr + nbytes <= base + mr.size):
            return None
        if not (mr._access_bits & _NEED_REMOTE_WRITE):
            return None
        try:
            backing, reg_off = mr._backing(addr - base, nbytes)
        except ValueError:
            return None
        if mr.physical:
            pages = ()
            table._phys[rkey] = (mr, base, base + mr.size)
        else:
            pages = tuple(mr.page_ids(addr - base, nbytes))
    if pages and not rrnic.pte_cache.contains_all(pages):
        return None

    rqp = srq_source = srq_items = None
    fused_kernel = fcq = None
    if imm is not None:
        rqp = table.rqp
        if rqp is None or rqp is not rdev.qps.get(dst_qpn):
            rqp = rdev.qps.get(dst_qpn)
            table.rqp = rqp
            if rqp is None:
                return None
        srq_source = rqp.srq if rqp.srq is not None else rqp._own_rq
        if srq_source is not table.srq_source:
            try:
                srq_source._fp_claims
            except AttributeError:
                srq_source._fp_claims = 0
            table.srq_source = srq_source
            store = getattr(srq_source, "_store", srq_source)
            table.srq_items = store.items
        srq_items = table.srq_items
        if len(srq_source) <= srq_source._fp_claims:
            return None
        lite = rdev.node.lite
        if (lite is not None and lite._poller is not None
                and lite.params.cq_poll_batch <= 1):
            fcq = rqp.recv_cq
            if fcq is not lite.recv_cq or fcq.fp_pending:
                fcq = None
            else:
                cq_store = fcq._store
                if (not cq_store.items
                        and len(cq_store._getters) == 1
                        and lite.fp_rpc_gate(imm, table.src_node, addr)):
                    fused_kernel = lite
                else:
                    fcq = None

    # ---- timeline (identical float-add order to try_fast_post) -------
    dur_l, dur_r, ser, wire_n = table.size_costs(nbytes)
    t0 = sim.now
    t1 = t0 + table.doorbell
    t2 = t1 + dur_l
    t3 = t2 + ser
    t4 = t3 + table.prop
    t5 = t4 + dur_r
    if imm is None:
        a1 = t5 + table.ack_ser
        t_end = (a1 + table.prop) + table.rnic_ack
    else:
        t_rc = t5 + table.completion_r
        a1 = t_rc + table.ack_ser
        t_end = (a1 + table.prop) + table.rnic_ack
        if fused_kernel is not None:
            t_disp = t_rc + fused_kernel.params.poll_loop_us / 2
    t_guard = t_end
    if fused_kernel is not None and t_disp > t_guard:
        t_guard = t_disp
    if sim.fp_horizon() <= t_guard:
        return None

    # ---- commit ------------------------------------------------------
    fp_stats.chain_commits += 1
    qp.posted_sends += 1
    done = sim.event()
    qp._last_remote_done = done
    # The slow path allocates a SendWR before the attempt; keep the
    # process-global id counter aligned (its CQE never exists: every
    # chain leg is unsignaled).
    SendWR._next_id += 1

    lrnic.qp_cache.access(qp.qpn)
    rrnic.qp_cache.access(dst_qpn)
    rrnic.key_cache.access(rkey)
    if pages:
        rrnic.pte_cache.access_many(pages)

    lrnic.wqe_count += 1
    lrnic.bytes_dma += nbytes
    rrnic.wqe_count += 1
    rrnic.bytes_dma += nbytes
    fabric.total_bytes += wire_n + ACK_BYTES
    fabric.transfer_count += 2
    src_port.tx_bytes += wire_n
    dst_port.rx_bytes += wire_n
    dst_port.tx_bytes += ACK_BYTES
    src_port.rx_bytes += ACK_BYTES

    sq.in_use += 1
    window.in_use += 1
    lpipe.in_use += 1
    rpipe.in_use += 1
    src_tx.in_use += 1
    dst_rx.in_use += 1
    if srq_source is not None:
        srq_source._fp_claims += 1
    if fused_kernel is not None:
        fcq.fp_pending += 1
    peer._rr += 1
    kernel.node.cpu.charge("lite-post", engine.params.rnic_doorbell_us)

    if imm is None:
        core_pad = _CORE_PAD_WRITE
    elif fused_kernel is None:
        core_pad = _CORE_PAD_WRITE_IMM
    else:
        core_pad = _FUSED_IMM_PAD
    seq = sim._seq + core_pad + extra_pad
    fpq = sim._fpq

    seq += 1
    heappush(fpq, (t2, seq, table._rel_t2))
    seq += 1
    heappush(fpq, (t3, seq, table._rel_t3))

    # The completion release pair is identical for every chain leg on
    # this (QP, window); build it once.
    ce = table._chain_end
    if ce is None or ce[0] is not window:
        def _end(sqr=sq.release, wrel=window.release):
            sqr()
            wrel()
        table._chain_end = ce = (window, _end)
    at_end = ce[1]

    if imm is None:

        def at_mid():
            rpipe.release()
            try:
                backing.write(reg_off, data)
            except ValueError:
                fp_stats.mismodels += 1
            done.succeed()
            if dst_tx.in_use >= dst_tx.capacity:
                fp_stats.mismodels += 1
            if src_rx.in_use >= src_rx.capacity:
                fp_stats.mismodels += 1
            dst_tx.in_use += 1
            src_rx.in_use += 1

        seq += 1
        heappush(fpq, (t5, seq, at_mid))
        seq += 1
        heappush(fpq, (a1, seq, table._rel_back))
        seq += 1
        heappush(fpq, (t_end, seq, at_end))
    else:
        box = []
        src_node = table.src_node

        def at_mid():
            rpipe.release()
            try:
                backing.write(reg_off, data)
            except ValueError:
                fp_stats.mismodels += 1
            if srq_items:
                box.append(srq_items.popleft())
            else:
                fp_stats.mismodels += 1
            srq_source._fp_claims -= 1

        if fused_kernel is None:

            def at_rc():
                if box:
                    recv_cq = rqp.recv_cq
                    if recv_cq is not None:
                        recv_cq.push(WorkCompletion(
                            wr_id=box[0].wr_id, status=WcStatus.SUCCESS,
                            opcode=Opcode.RECV_IMM, byte_len=nbytes, imm=imm,
                            qp_num=dst_qpn, src_node=src_node, src_qpn=qp.qpn,
                        ))
                done.succeed()
                if dst_tx.in_use >= dst_tx.capacity:
                    fp_stats.mismodels += 1
                if src_rx.in_use >= src_rx.capacity:
                    fp_stats.mismodels += 1
                dst_tx.in_use += 1
                src_rx.in_use += 1

        else:
            wcbox = []

            def at_rc():
                if box:
                    wc = WorkCompletion(
                        wr_id=box[0].wr_id, status=WcStatus.SUCCESS,
                        opcode=Opcode.RECV_IMM, byte_len=nbytes, imm=imm,
                        qp_num=dst_qpn, src_node=src_node, src_qpn=qp.qpn,
                    )
                    fstore = fcq._store
                    if len(fstore._getters) == 1 and not fstore.items:
                        wc.completed_at = t_rc
                        fcq.pushed += 1
                        fcq.polled += 1
                        fcq.fp_bypass = True
                        sim._seq += 2
                        wcbox.append(wc)
                    else:
                        fcq.push(wc)
                done.succeed()
                if dst_tx.in_use >= dst_tx.capacity:
                    fp_stats.mismodels += 1
                if src_rx.in_use >= src_rx.capacity:
                    fp_stats.mismodels += 1
                dst_tx.in_use += 1
                src_rx.in_use += 1

            def at_disp():
                if wcbox:
                    fused_kernel._fp_deliver(wcbox[0], t_rc)
                else:
                    fcq.fp_pending -= 1

        seq += 1
        heappush(fpq, (t5, seq, at_mid))
        seq += 1
        heappush(fpq, (t_rc, seq, at_rc))
        seq += 1
        heappush(fpq, (a1, seq, table._rel_back))
        if fused_kernel is not None:
            seq += 1
            heappush(fpq, (t_disp, seq, at_disp))
        seq += 1
        heappush(fpq, (t_end, seq, at_end))

    sim._seq = seq
    return True


# ---------------------------------------------------------------------------
# Vectorized multi-chunk commits (LT_write/LT_read fan-out in one pass)
# ---------------------------------------------------------------------------
#
# A multi-chunk LMR op fans out into one RDMA op per touched chunk.  The
# per-piece fast path above already collapses each piece, but the caller
# still pays one attempt (entry checks, span resolution, WR allocation)
# per piece per op plus an all_of barrier.  ``try_fast_post_vec``
# commits the *entire* ``MappedLmr.plan()`` fan-out as one arithmetic
# pass: the piece geometry and backing resolution are memoised per
# (offset, len, kind) on the mapping (``mapping._fp_plans``, registered
# in the first piece's CostTable for residency), and the k-piece
# timeline — local-pipeline FIFO, the shared egress-link serialization
# chain, per-peer ingress/ACK chains, the global return-link chain — is
# solved closed-form in the slow path's float-add order.
#
# Entry is deliberately narrow so the closed form is exact:
#   * every piece remote (a local memcpy piece interleaves CPU yields);
#   * no replicas (the backup fan-out is its own barrier);
#   * per peer, at most as many pieces as eligible QPs — each piece
#     rides its own QP ((rr+j) mod K, exactly what the slow loop's
#     round-robin would pick), so no same-QP predecessor chains;
#   * every touched pipeline/port channel idle, all caches hot, no
#     fault hook, horizon past the op's tail.
# Any miss falls back to the per-piece path above, bit-exact by
# construction.
#
# Invalidation: plans revalidate per attempt through
# ``mapping.plan_version`` (bumped by ``retarget()`` on failover
# promotion / chunk migration), each piece's ``mr.deregistered`` +
# ``backing.freed`` flags, and the per-QP CostTable stamps (params,
# RNIC cost_version).  ``Node.fastpath_fence`` additionally clears all
# plan memos cluster-wide.

# Slow-path enqueues per remote piece, counted from the LITE layer's
# _post() (boot + instant window grant + completion) through the verbs
# core (see the _CORE_PAD ledger: WRITE 18, READ 19 real slow enqueues)
# plus the signaled completion timeout:
#   WRITE: 1 + 1 + 18 + 1 + 1 = 22      READ: 1 + 1 + 19 + 1 + 1 = 23
# plus one all_of-condition succeed per *op*.  The vec commit's real
# enqueues are its dispatches + k order-done succeeds + the handle
# succeed; the pad is the difference, computed per commit.
_VEC_SLOW_PIECE = {Opcode.WRITE: 22, Opcode.READ: 23}


class _VecPiece:
    """One remote piece of a memoised multi-chunk plan."""

    __slots__ = ("dst_node", "remote_addr", "rkey", "nbytes", "buf_off",
                 "mr", "pages", "backing", "reg_off")


class VecPlan:
    """Memoised fan-out geometry for one (offset, len, kind) access.

    ``ok=False`` marks a structurally unvectorizable access (a local
    piece in the plan): the negative entry makes repeat attempts O(1)
    instead of re-planning every op.  Structure is keyed to
    ``plan_version``; dynamic state (QP choice, backing liveness,
    caches, contention) is validated per attempt.
    """

    __slots__ = ("plan_version", "ok", "pieces", "per_peer")

    def __init__(self, plan_version, ok, pieces=(), per_peer=()):
        self.plan_version = plan_version
        self.ok = ok
        self.pieces = pieces
        # ((peer_lite_id, (piece_index, ...)), ...) in first-touch order.
        self.per_peer = per_peer


def _build_vec_plan(kernel, mapping, offset, nbytes, opcode):
    """Resolve a plan's geometry, or None when it must stay slow.

    Returns a VecPlan (possibly ok=False, which *is* memoised), or
    None for conditions the slow path must surface itself (unknown or
    dead peer, failed remote resolution) — those are not memoised.
    """
    lite_id = kernel.lite_id
    need = _NEED_REMOTE_READ if opcode is Opcode.READ else _NEED_REMOTE_WRITE
    fabric = kernel.node.fabric
    pieces = []
    per_peer = {}
    for chunk, chunk_off, piece_len, buf_off in mapping.plan(offset, nbytes):
        if chunk.node_id == lite_id:
            return VecPlan(mapping.plan_version, False)
        peer = kernel.peers.get(chunk.node_id)
        if peer is None or not peer.alive:
            return None
        # chunk.node_id is a LITE id; the fabric is keyed by node id.
        rnode = fabric.nodes.get(peer.node_id)
        if rnode is None or rnode._verbs_device is None:
            return None
        if chunk.rkey is not None:
            remote_addr, rkey = chunk.va + chunk_off, chunk.rkey
        else:
            remote_addr, rkey = chunk.addr + chunk_off, peer.global_rkey
        mr = rnode.device.mrs_by_rkey.get(rkey)
        if mr is None or mr.deregistered:
            return None
        base = mr.base_addr
        if not (base <= remote_addr
                and remote_addr + piece_len <= base + mr.size):
            return None
        if not (mr._access_bits & need):
            return None
        try:
            backing, reg_off = mr._backing(remote_addr - base, piece_len)
        except ValueError:
            return None
        piece = _VecPiece()
        piece.dst_node = chunk.node_id
        piece.remote_addr = remote_addr
        piece.rkey = rkey
        piece.nbytes = piece_len
        piece.buf_off = buf_off
        piece.mr = mr
        piece.pages = (() if mr.physical
                       else tuple(mr.page_ids(remote_addr - base, piece_len)))
        piece.backing = backing
        piece.reg_off = reg_off
        per_peer.setdefault(chunk.node_id, []).append(len(pieces))
        pieces.append(piece)
    if not pieces:
        return VecPlan(mapping.plan_version, False)
    fp_stats.plan_builds += 1
    return VecPlan(
        mapping.plan_version, True, tuple(pieces),
        tuple((pid, tuple(idxs)) for pid, idxs in per_peer.items()),
    )


def _vec_return_chain(k, groups, t_req, dur):
    """Solve the return-leg contention chain (ACK or READ response).

    Each piece requests its peer's egress link (``tx_of[i]``) at
    ``t_req[i]`` (FIFO per peer), then the shared home ingress link
    (FIFO globally, by grant order), then serializes for ``dur[i]``.
    Returns per-piece (tx grant, rx grant, serialization end) plus the
    acquire/release shape: which acquires fold into the t5 dispatch,
    which need an extra dispatch at the tx-grant instant, and which
    releases are skipped because the successor was granted by them
    (a handoff keeps ``in_use`` flat, so a foreign FIFO waiter queued
    behind our pieces is never woken early).
    """
    d = [0.0] * k
    u = [0.0] * k
    end = [0.0] * k
    tx_acq_now = [False] * k    # acquire peer-TX inside the t5 dispatch
    rx_acq_now = [False] * k    # acquire home-RX inside the t5 dispatch
    rx_acq_at_d = [False] * k   # extra dispatch at d[i] acquiring home-RX
    tx_rel = [True] * k         # release peer-TX at end[i]
    rx_rel = [True] * k         # release home-RX at end[i]
    heap = []
    queues = {}
    for gi, (pid, idxs) in enumerate(groups):
        q = sorted(idxs, key=lambda i: (t_req[i], i))
        queues[gi] = (q, 0)
        i = q[0]
        heappush(heap, (t_req[i], t_req[i], i, gi))
    tx_state = {}               # gi -> (free_at, last_piece)
    rx_free = None
    rx_last = -1
    while heap:
        _cd, _tr, i, gi = heappop(heap)
        st = tx_state.get(gi)
        if st is not None and t_req[i] < st[0]:
            d[i] = st[0]
            tx_rel[st[1]] = False           # handoff: holder never lets go
        else:
            d[i] = t_req[i]
            tx_acq_now[i] = True
        if rx_free is not None and d[i] < rx_free:
            u[i] = rx_free
            rx_rel[rx_last] = False         # handoff
        else:
            u[i] = d[i]
            if d[i] == t_req[i]:
                rx_acq_now[i] = True
            else:
                rx_acq_at_d[i] = True
        end[i] = u[i] + dur[i]
        tx_state[gi] = (end[i], i)
        rx_free = end[i]
        rx_last = i
        q, pos = queues[gi]
        pos += 1
        queues[gi] = (q, pos)
        if pos < len(q):
            j = q[pos]
            cand = end[i] if t_req[j] < end[i] else t_req[j]
            heappush(heap, (cand, t_req[j], j, gi))
    return d, u, end, tx_acq_now, rx_acq_now, rx_acq_at_d, tx_rel, rx_rel


def _vec_pipe_pass(order, t_req, dur, cap):
    """Solve one FIFO pass of a capacity-``cap`` RNIC pipeline.

    ``order`` is the request order (piece order for the post pass, t6
    order for the READ scatter pass).  Returns per-index (grant, end,
    fresh, rel_real): ``fresh`` grants acquire a free slot at the grant
    instant; non-fresh grants inherit the slot from the release whose
    instant they got (that release is marked not-real).
    """
    grant = {}
    end = {}
    fresh = {}
    rel_real = {}
    active = []
    for i in order:
        r = t_req[i]
        while active and active[0][0] <= r:
            heappop(active)
        if len(active) < cap:
            g = r
            fresh[i] = True
        else:
            rel_t, rel_i = heappop(active)
            g = rel_t
            fresh[i] = False
            rel_real[rel_i] = False
        grant[i] = g
        e = g + dur[i]
        end[i] = e
        rel_real.setdefault(i, True)
        heappush(active, (e, i))
    return grant, end, fresh, rel_real


def _vec_commit_single(engine, sim, kernel, mapping, key, plan, p, qp,
                       window, table, peer, payload, read_op, opcode,
                       t0, t1):
    """Commit a validated single-piece plan (k == 1) straight-line.

    The general chain solvers collapse to a linear float chain at
    k == 1; this specialization emits exactly the dispatches the
    general path would after its sort — the same instants, the same
    same-instant order, the same pad — without building the per-piece
    arrays, solving the FIFO chains, or sorting an action list.
    """
    nbytes = p.nbytes
    dur_l, dur_r, ser, wire_n = table.size_costs(nbytes)
    if read_op:
        t2 = t1 + table.wqe_l
        t3 = t2 + table.ser0
    else:
        t2 = t1 + dur_l
        t3 = t2 + ser
    t4 = t3 + table.prop
    t5 = t4 + dur_r
    if read_op:
        r1 = t5 + ser
        t6 = r1 + table.prop
        t7 = t6 + dur_l
        t_end = t7 + table.completion_l
    else:
        a1 = t5 + table.ack_ser
        t_end = ((a1 + table.prop) + table.rnic_ack) + table.completion_l
    if sim.fp_horizon() <= t_end:
        return None

    # ---- commit (state mutations in the general path's order) --------
    fp_stats.vec_commits += 1
    treg = table._plans
    if len(treg) >= _MEMO_MAX:
        treg.clear()
    treg[(id(mapping),) + key] = plan
    qp.posted_sends += 1
    done = sim.event()
    qp._last_remote_done = done
    kernel.node.cpu.charge("lite-post", engine.params.rnic_doorbell_us)
    peer._rr += 1
    wr_id = SendWR._next_id + 1
    SendWR._next_id = wr_id

    lrnic = table.lrnic
    rrnic = table.rrnic
    lrnic.qp_cache.access(qp.qpn)
    rrnic.qp_cache.access(table.dst_qpn)
    rrnic.key_cache.access(p.rkey)
    if p.pages:
        rrnic.pte_cache.access_many(p.pages)
    if read_op:
        lrnic.qp_cache.access(qp.qpn)
        lrnic.wqe_count += 2
        out_b, back_b = _WIRE0, wire_n
    else:
        lrnic.wqe_count += 1
        out_b, back_b = wire_n, ACK_BYTES
    lrnic.bytes_dma += nbytes
    rrnic.wqe_count += 1
    rrnic.bytes_dma += nbytes
    fabric = table.fabric
    fabric.total_bytes += out_b + back_b
    fabric.transfer_count += 2
    src_port = table.src_port
    dst_port = table.dst_port
    src_port.tx_bytes += out_b
    src_port.rx_bytes += back_b
    dst_port.rx_bytes += out_b
    dst_port.tx_bytes += back_b

    lpipe = table.lpipe
    rpipe = table.rpipe
    src_tx = table.src_tx
    src_rx = table.src_rx
    dst_tx = table.dst_tx
    dst_rx = table.dst_rx
    lpipe.in_use += 1
    src_tx.in_use += 1
    dst_rx.in_use += 1
    rpipe.in_use += 1
    qp._sq_slots.in_use += 1
    window.in_use += 1

    handle = sim.event()
    guard = fp_stats
    pad = _VEC_SLOW_PIECE[opcode] + 1 - ((7 if read_op else 5) + 2)
    seq = sim._seq + pad
    fpq = sim._fpq

    seq += 1
    heappush(fpq, (t2, seq, table._rel_t2))
    seq += 1
    heappush(fpq, (t3, seq, table._rel_t3))

    def at_end():
        send_cq = qp.send_cq
        if send_cq is not None:
            send_cq.push(WorkCompletion(
                wr_id=wr_id, status=WcStatus.SUCCESS, opcode=opcode,
                byte_len=nbytes, imm=None, qp_num=qp.qpn,
            ))
        qp._sq_slots.release()
        window.release()
        if read_op:
            handle.succeed(box[0] if box else b"")
        else:
            handle.succeed(WcStatus.SUCCESS)

    if read_op:
        box = []

        def at_mid():
            rpipe.release()
            try:
                box.append(p.backing.read(p.reg_off, nbytes))
            except ValueError:
                guard.mismodels += 1
            done.succeed()
            if dst_tx.in_use >= dst_tx.capacity:
                guard.mismodels += 1
            dst_tx.in_use += 1
            if src_rx.in_use >= src_rx.capacity:
                guard.mismodels += 1
            src_rx.in_use += 1

        def at_t6():
            if lpipe.in_use >= lpipe.capacity:
                guard.mismodels += 1
            lpipe.in_use += 1

        def at_t7():
            lpipe.release()

        seq += 1
        heappush(fpq, (t5, seq, at_mid))
        seq += 1
        heappush(fpq, (r1, seq, table._rel_back))
        seq += 1
        heappush(fpq, (t6, seq, at_t6))
        seq += 1
        heappush(fpq, (t7, seq, at_t7))
        seq += 1
        heappush(fpq, (t_end, seq, at_end))
    else:

        def at_mid():
            rpipe.release()
            try:
                p.backing.write(p.reg_off, payload)
            except ValueError:
                guard.mismodels += 1
            done.succeed()
            if dst_tx.in_use >= dst_tx.capacity:
                guard.mismodels += 1
            dst_tx.in_use += 1
            if src_rx.in_use >= src_rx.capacity:
                guard.mismodels += 1
            src_rx.in_use += 1

        seq += 1
        heappush(fpq, (t5, seq, at_mid))
        seq += 1
        heappush(fpq, (a1, seq, table._rel_back))
        seq += 1
        heappush(fpq, (t_end, seq, at_end))

    sim._seq = seq
    return handle


def try_fast_post_vec(engine, mapping, offset, nbytes, payload, opcode,
                      priority):
    """Commit a whole multi-chunk fan-out as one arithmetic pass.

    ``engine`` is the OneSidedEngine; ``payload`` is the caller's
    buffer for WRITE (None for READ).  Returns the completion handle —
    an event succeeding at the op's last piece's completion instant
    with WcStatus.SUCCESS (WRITE) or the assembled bytes (READ) — or
    None, in which case nothing was touched and the caller must walk
    the per-piece path.
    """
    sim = engine.sim
    if not sim.fastpath_enabled or sim.tracer is not None:
        return None
    if sim._nowq:
        return None
    if mapping.replica_chunks or nbytes <= 0:
        return None
    fp_stats.vec_attempts += 1
    kernel = engine.kernel

    # ---- plan memo ---------------------------------------------------
    key = (offset, nbytes, opcode is Opcode.READ)
    plans = mapping._fp_plans
    plan = plans.get(key)
    if plan is not None and plan.plan_version != mapping.plan_version:
        plan = None
    if plan is None:
        plan = _build_vec_plan(kernel, mapping, offset, nbytes, opcode)
        if plan is None:
            return None
        if len(plans) >= _MEMO_MAX:
            plans.clear()
        plans[key] = plan
    else:
        fp_stats.plan_hits += 1
    if not plan.ok:
        return None

    # ---- dynamic validation (QPs, endpoints, contention, caches) -----
    pieces = plan.pieces
    k = len(pieces)
    qos = kernel.qos
    qps = [None] * k
    windows = [None] * k
    tables = [None] * k
    groups = plan.per_peer
    peer_objs = []
    lpipe = None
    for pid, idxs in groups:
        peer = kernel.peers.get(pid)
        if peer is None or not peer.alive:
            return None
        pairs = qos.eligible_qps(peer, priority)
        npairs = len(pairs)
        if len(idxs) > npairs:
            return None
        peer_objs.append(peer)
        rr = peer._rr
        first_table = None
        for j, i in enumerate(idxs):
            qp, window = pairs[(rr + j) % npairs]
            if not qp._is_rc or qp.state != "RTS" or qp.remote is None:
                return None
            pred = qp._last_remote_done
            if pred is not None and pred.callbacks is not None:
                return None
            sq = qp._sq_slots
            if sq.in_use >= sq.capacity:
                return None
            if window.in_use >= window.capacity:
                return None
            table = _table_for(qp)
            if table is None:
                return None
            if (table.src_node == table.dst_node
                    or table.dst_node != peer.node_id):
                return None
            if table.rdev.node.crashed:
                return None
            qps[i] = qp
            windows[i] = window
            tables[i] = table
            if first_table is None:
                first_table = table
        # Per-peer path and responder pipeline, once per peer.
        if not first_table.fabric.fp_path_clear(
                first_table.src_port, first_table.dst_port):
            return None
        rpipe = first_table.rpipe
        if rpipe.in_use or len(idxs) > rpipe.capacity:
            return None
        if lpipe is None:
            lpipe = first_table.lpipe
    if lpipe.in_use:
        return None

    lrnic = tables[0].lrnic
    need = _NEED_REMOTE_READ if opcode is Opcode.READ else _NEED_REMOTE_WRITE
    for i in range(k):
        p = pieces[i]
        table = tables[i]
        if not lrnic.qp_cache.contains(qps[i].qpn):
            return None
        rrnic = table.rrnic
        if not rrnic.qp_cache.contains(table.dst_qpn):
            return None
        if not rrnic.key_cache.contains(p.rkey):
            return None
        if p.pages and not rrnic.pte_cache.contains_all(p.pages):
            return None
        if p.mr.deregistered:
            return None
        if p.backing.freed:
            try:
                p.backing, p.reg_off = p.mr._backing(
                    p.remote_addr - p.mr.base_addr, p.nbytes)
            except ValueError:
                return None

    # ---- timeline (slow path's float-add order throughout) -----------
    t0 = sim.now
    table0 = tables[0]
    doorbell = table0.doorbell
    prop = table0.prop
    t1 = t0 + doorbell
    read_op = opcode is Opcode.READ
    if k == 1:
        # Single-piece plan: the chains are trivial, so skip the
        # general solvers and run the same straight-line arithmetic as
        # try_fast_post — the win over the per-piece path is the
        # memoised plan (no WR allocation, no span re-resolution, no
        # all_of barrier).
        return _vec_commit_single(
            engine, sim, kernel, mapping, key, plan, pieces[0], qps[0],
            windows[0], table0, peer_objs[0], payload, read_op, opcode,
            t0, t1)
    dur_l = [0.0] * k
    dur_r = [0.0] * k
    ser = [0.0] * k
    wire = [0] * k
    for i in range(k):
        dur_l[i], dur_r[i], ser[i], wire[i] = tables[i].size_costs(
            pieces[i].nbytes)
    # Post pass through the local RNIC pipeline (READ WQEs carry no
    # payload: occupancy is the bare WQE cost).
    out_dur = [table0.wqe_l] * k if read_op else dur_l
    piece_order = list(range(k))
    t1_req = [t1] * k
    _g1, t2, _fresh1, lrel1 = _vec_pipe_pass(
        piece_order, t1_req, out_dur, lpipe.capacity)
    t2 = [t2[i] for i in range(k)]

    # Shared egress-link chain (FIFO by request = pipeline-exit order).
    out_ser = [table0.ser0] * k if read_op else ser
    order_out = sorted(piece_order, key=lambda i: (t2[i], i))
    s = [0.0] * k
    ser_end = [0.0] * k
    stx_acq = [False] * k       # fresh src-TX acquire at s[i]
    stx_rel = [True] * k        # real src-TX release at ser_end[i]
    tx_free = None
    tx_last = -1
    for i in order_out:
        if tx_free is not None and t2[i] < tx_free:
            s[i] = tx_free
            stx_rel[tx_last] = False        # handoff
        else:
            s[i] = t2[i]
            stx_acq[i] = tx_last >= 0       # first piece: commit acquire
        ser_end[i] = s[i] + out_ser[i]
        tx_free = ser_end[i]
        tx_last = i
    # Peer ingress windows never overlap (the shared egress serializes
    # same-peer pieces): granted at s[i], released at ser_end[i]; the
    # first piece per peer is commit-acquired, later ones acquire at s.
    drx_acq = [False] * k
    seen_peer = set()
    for i in order_out:
        pid = pieces[i].dst_node
        if pid in seen_peer:
            drx_acq[i] = True
        else:
            seen_peer.add(pid)

    t4 = [0.0] * k
    t5 = [0.0] * k
    for i in range(k):
        t4[i] = ser_end[i] + prop
        t5[i] = t4[i] + dur_r[i]

    # Return leg: WRITE acks / READ responses share the same channel
    # structure (peer egress FIFO per peer, home ingress FIFO global).
    back_dur = ser if read_op else [table0.ack_ser] * k
    (d_grant, _u, back_end, btx_acq_now, brx_acq_now, brx_acq_at_d,
     btx_rel, brx_rel) = _vec_return_chain(k, groups, t5, back_dur)

    parts = [b""] * k if read_op else None
    if read_op:
        t6 = [back_end[i] + prop for i in range(k)]
        order_t6 = sorted(piece_order, key=lambda i: (t6[i], i))
        g2, t7, fresh2, lrel2 = _vec_pipe_pass(
            order_t6, t6, dur_l, lpipe.capacity)
        t_end = [t7[i] + table0.completion_l for i in range(k)]
    else:
        rnic_ack = table0.rnic_ack
        completion_l = table0.completion_l
        t_end = [(back_end[i] + prop) + rnic_ack + completion_l
                 for i in range(k)]

    last = max(piece_order, key=lambda i: (t_end[i], i))
    if sim.fp_horizon() <= t_end[last]:
        return None

    # ---- commit ------------------------------------------------------
    fp_stats.vec_commits += 1
    # Register the plan against the first piece's CostTable: a fence
    # that rotates the table garbage-collects this registry, and the
    # mapping-side reference above revalidates through plan_version and
    # the per-piece liveness flags either way.
    treg = tables[0]._plans
    if len(treg) >= _MEMO_MAX:
        treg.clear()
    treg[(id(mapping),) + key] = plan
    params = engine.params
    cpu = kernel.node.cpu
    fabric = table0.fabric
    src_port = table0.src_port
    base_id = SendWR._next_id
    SendWR._next_id = base_id + k
    dones = [None] * k
    for i in range(k):
        qp = qps[i]
        qp.posted_sends += 1
        done = sim.event()
        qp._last_remote_done = done
        dones[i] = done
        cpu.charge("lite-post", params.rnic_doorbell_us)
    for gi, (pid, idxs) in enumerate(groups):
        peer_objs[gi]._rr += len(idxs)

    # Cache-hit replay in slow-path lookup order: the post pass touches
    # the local QP cache in piece order; each responder's caches are
    # touched at its arrival instants (t4 order per RNIC); the READ
    # scatter pass touches the local QP cache again in grant order.
    for i in piece_order:
        lrnic.qp_cache.access(qps[i].qpn)
    for i in sorted(piece_order, key=lambda i: (t4[i], i)):
        table = tables[i]
        rrnic = table.rrnic
        rrnic.qp_cache.access(table.dst_qpn)
        rrnic.key_cache.access(pieces[i].rkey)
        if pieces[i].pages:
            rrnic.pte_cache.access_many(pieces[i].pages)
    if read_op:
        for i in order_t6:
            lrnic.qp_cache.access(qps[i].qpn)

    # Counter replay (end-state equivalent).
    for i in range(k):
        nb = pieces[i].nbytes
        table = tables[i]
        rrnic = table.rrnic
        if read_op:
            lrnic.wqe_count += 2
            out_b, back_b = _WIRE0, wire[i]
        else:
            lrnic.wqe_count += 1
            out_b, back_b = wire[i], ACK_BYTES
        lrnic.bytes_dma += nb
        rrnic.wqe_count += 1
        rrnic.bytes_dma += nb
        fabric.total_bytes += out_b + back_b
        fabric.transfer_count += 2
        src_port.tx_bytes += out_b
        src_port.rx_bytes += back_b
        dst_port = table.dst_port
        dst_port.rx_bytes += out_b
        dst_port.tx_bytes += back_b

    # Real holds (widened to commit time, per the module doctrine).
    n_fresh1 = min(k, lpipe.capacity)
    lpipe.in_use += n_fresh1
    src_tx = table0.src_tx
    src_rx = table0.src_rx
    src_tx.in_use += 1
    for gi, (pid, idxs) in enumerate(groups):
        table = tables[idxs[0]]
        table.dst_rx.in_use += 1
        table.rpipe.in_use += len(idxs)
    for i in range(k):
        qps[i]._sq_slots.in_use += 1
        windows[i].in_use += 1

    if not read_op:
        view = payload if type(payload) is memoryview else memoryview(payload)

    # ---- dispatches --------------------------------------------------
    # Generated phase-major (releases before the acquires that can tie
    # with them), stable-sorted by time; pushed in that order so
    # same-instant dispatches run in slow-path order.
    actions = []
    add = actions.append
    handle = sim.event()
    guard = fp_stats

    for i in piece_order:                       # phase 0: post-pass exits
        if lrel1.get(i, True):
            add((t2[i], lambda lp=lpipe: lp.release()))
    for i in piece_order:                       # phase 1: wire-out ends
        def _serend(rx=tables[i].dst_rx, tx_real=stx_rel[i]):
            rx.release()
            if tx_real:
                src_tx.release()
        add((ser_end[i], _serend))
    for i in piece_order:                       # phase 2: egress grants
        # After the release phase: a fresh grant landing exactly at a
        # predecessor's release instant must observe the release first
        # (the slow path's release event carries the earlier seq).
        acq = []
        if stx_acq[i]:
            acq.append(src_tx)
        if drx_acq[i]:
            acq.append(tables[i].dst_rx)
        if acq:
            def _acq(res_list=tuple(acq)):
                for res in res_list:
                    if res.in_use >= res.capacity:
                        guard.mismodels += 1
                    res.in_use += 1
            add((s[i], _acq))
    for i in piece_order:                       # phase 3: return-ser ends
        def _backend(i=i, rx_real=brx_rel[i], tx_real=btx_rel[i]):
            if rx_real:
                src_rx.release()
            if tx_real:
                tables[i].dst_tx.release()
        add((back_end[i], _backend))
    for i in piece_order:                       # phase 4: responder done
        p = pieces[i]
        if read_op:
            def _mid(i=i, p=p, rp=tables[i].rpipe,
                     tx=tables[i].dst_tx, tx_now=btx_acq_now[i],
                     rx_now=brx_acq_now[i], done=dones[i]):
                rp.release()
                try:
                    parts[i] = p.backing.read(p.reg_off, p.nbytes)
                except ValueError:
                    guard.mismodels += 1
                done.succeed()
                if tx_now:
                    if tx.in_use >= tx.capacity:
                        guard.mismodels += 1
                    tx.in_use += 1
                if rx_now:
                    if src_rx.in_use >= src_rx.capacity:
                        guard.mismodels += 1
                    src_rx.in_use += 1
        else:
            piece_payload = view[p.buf_off:p.buf_off + p.nbytes]

            def _mid(p=p, data=piece_payload, rp=tables[i].rpipe,
                     tx=tables[i].dst_tx, tx_now=btx_acq_now[i],
                     rx_now=brx_acq_now[i], done=dones[i]):
                rp.release()
                try:
                    p.backing.write(p.reg_off, data)
                except ValueError:
                    guard.mismodels += 1
                done.succeed()
                if tx_now:
                    if tx.in_use >= tx.capacity:
                        guard.mismodels += 1
                    tx.in_use += 1
                if rx_now:
                    if src_rx.in_use >= src_rx.capacity:
                        guard.mismodels += 1
                    src_rx.in_use += 1
        add((t5[i], _mid))
    for i in piece_order:                       # phase 5: deferred RX grab
        if brx_acq_at_d[i]:
            def _rxacq():
                if src_rx.in_use >= src_rx.capacity:
                    guard.mismodels += 1
                src_rx.in_use += 1
            add((d_grant[i], _rxacq))
    if read_op:
        for i in order_t6:                      # phase 6: scatter exits
            if lrel2.get(i, True):
                add((t7[i], lambda lp=lpipe: lp.release()))
        for i in order_t6:                      # phase 7: scatter grants
            if fresh2[i]:
                def _lacq():
                    if lpipe.in_use >= lpipe.capacity:
                        guard.mismodels += 1
                    lpipe.in_use += 1
                add((g2[i], _lacq))
    for i in piece_order:                       # phase 8: completions
        def _end(i=i, qp=qps[i], window=windows[i],
                 wr_id=base_id + 1 + i, is_last=(i == last)):
            send_cq = qp.send_cq
            if send_cq is not None:
                send_cq.push(WorkCompletion(
                    wr_id=wr_id, status=WcStatus.SUCCESS, opcode=opcode,
                    byte_len=pieces[i].nbytes, imm=None, qp_num=qp.qpn,
                ))
            qp._sq_slots.release()
            window.release()
            if is_last:
                if read_op:
                    handle.succeed(parts[0] if k == 1 else b"".join(parts))
                else:
                    handle.succeed(WcStatus.SUCCESS)
        add((t_end[i], _end))

    actions.sort(key=lambda a: a[0])
    pad = _VEC_SLOW_PIECE[opcode] * k + 1 - (len(actions) + k + 1)
    seq = sim._seq + pad
    fpq = sim._fpq
    for t, fn in actions:
        seq += 1
        heappush(fpq, (t, seq, fn))
    sim._seq = seq
    return handle
