"""Memory regions: virtual-address MRs and physical-address MRs.

A *virtual* MR is what user-space Verbs gives you: registration pins its
pages, the RNIC must resolve its PTEs on every access, and its record
competes for key-cache SRAM (paper §2.4).

A *physical* MR is the kernel-only registration path LITE exploits
(§4.1): it carries raw physical addresses, needs no PTEs, and one record
covers all of DRAM.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..hw.memory import PhysRegion
from .wr import Access

__all__ = ["MemoryRegion"]


class MemoryRegion:
    """A registered memory region; addressing is by ``base_addr + offset``."""

    def __init__(
        self,
        device,
        pd,
        lkey: int,
        rkey: int,
        base_addr: int,
        size: int,
        access: Access,
        region: Optional[PhysRegion] = None,
        physical: bool = False,
    ):
        self.device = device
        self.pd = pd
        self.lkey = lkey
        self.rkey = rkey
        self.base_addr = base_addr
        self.size = size
        self.access = access
        # Raw flag bits for the responder's permission check: plain int
        # ``&`` skips enum.Flag's __and__ machinery on every inbound op.
        self._access_bits = access.value
        self.region = region
        self.physical = physical
        self.deregistered = False

    # -- addressing ------------------------------------------------------
    def contains(self, addr: int, nbytes: int) -> bool:
        """True when [addr, addr+nbytes) lies inside this MR."""
        return self.base_addr <= addr and addr + nbytes <= self.base_addr + self.size

    def _backing(self, offset: int, nbytes: int) -> Tuple[PhysRegion, int]:
        """The physical region and intra-region offset for an access."""
        if self.deregistered:
            raise ValueError("access through a deregistered MR")
        if self.region is not None:
            return self.region, offset
        # Physical global MR: resolve against the host's live allocations.
        return self.device.node.memory.resolve(self.base_addr + offset, nbytes)

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read real bytes from the MR's backing memory."""
        region, reg_off = self._backing(offset, nbytes)
        tracer = self.device.sim.tracer
        if tracer is not None:
            tracer.metrics.count("mr.bytes_read", nbytes)
        return region.read(reg_off, nbytes)

    def read_into(self, offset: int, buf) -> int:
        """Read MR bytes straight into a caller buffer (zero-copy DMA)."""
        region, reg_off = self._backing(offset, len(buf))
        return region.read_into(reg_off, buf)

    def write(self, offset: int, payload) -> None:
        """Write real bytes (any bytes-like) into the MR's backing memory."""
        region, reg_off = self._backing(offset, len(payload))
        tracer = self.device.sim.tracer
        if tracer is not None:
            tracer.metrics.count("mr.bytes_written", len(payload))
        region.write(reg_off, payload)

    # -- RNIC cost inputs --------------------------------------------------
    def page_ids(self, offset: int, nbytes: int) -> List:
        """Pages needing cached PTEs; empty for physical MRs (no PTEs)."""
        if self.physical or nbytes <= 0:
            return []
        assert self.region is not None
        return self.region.page_ids(self.device.params.page_size, offset, nbytes)

    def num_pages(self) -> int:
        """4 KB pages covered by this MR (pinning/PTE accounting)."""
        page = self.device.params.page_size
        return (self.size + page - 1) // page

    def __repr__(self) -> str:
        kind = "phys" if self.physical else "virt"
        return (
            f"MR({kind}, node={self.device.node.node_id}, lkey={self.lkey}, "
            f"rkey={self.rkey}, base={self.base_addr:#x}, size={self.size})"
        )
