"""Native RDMA Verbs substrate (the interface LITE builds upon)."""

from .cq import CompletionQueue
from .device import Device, ProtectionDomain
from .mr import MemoryRegion
from .qp import QueuePair, SharedReceiveQueue
from .wr import (
    ACK_BYTES,
    Access,
    Opcode,
    RecvWR,
    SendWR,
    Sge,
    UD_MTU,
    WcStatus,
    WorkCompletion,
    WIRE_HEADER_BYTES,
    wire_bytes,
)

__all__ = [
    "Device",
    "ProtectionDomain",
    "MemoryRegion",
    "QueuePair",
    "SharedReceiveQueue",
    "CompletionQueue",
    "Access",
    "Opcode",
    "WcStatus",
    "Sge",
    "SendWR",
    "RecvWR",
    "WorkCompletion",
    "WIRE_HEADER_BYTES",
    "ACK_BYTES",
    "UD_MTU",
    "wire_bytes",
]
