"""Work requests, completions, and access flags — the Verbs vocabulary."""

from __future__ import annotations

import enum
from typing import List, Optional

__all__ = [
    "Opcode",
    "WcStatus",
    "Access",
    "Sge",
    "SendWR",
    "RecvWR",
    "WorkCompletion",
    "WIRE_HEADER_BYTES",
    "ACK_BYTES",
    "RC_MTU",
    "UD_MTU",
]

# IB transport header budget per packet (LRH+BTH+RETH-ish) and RC ACK size.
WIRE_HEADER_BYTES = 30
ACK_BYTES = 30
RC_MTU = 4096
UD_MTU = 4096


class Opcode(enum.Enum):
    """RDMA operation codes (the Verbs vocabulary)."""

    WRITE = "write"
    WRITE_IMM = "write_imm"
    READ = "read"
    SEND = "send"
    RECV = "recv"
    RECV_IMM = "recv_imm"
    FETCH_ADD = "fetch_add"
    CMP_SWAP = "cmp_swap"


class WcStatus(enum.Enum):
    """Work-completion status codes."""

    SUCCESS = "success"
    LOC_LEN_ERR = "local_length_error"
    REM_ACCESS_ERR = "remote_access_error"
    REM_INV_REQ_ERR = "remote_invalid_request"
    RETRY_EXC_ERR = "transport_retry_exceeded"
    RNR_RETRY_EXC_ERR = "rnr_retry_exceeded"
    WR_FLUSH_ERR = "flushed"


class Access(enum.Flag):
    """MR access-permission flags (ibv_access_flags)."""

    NONE = 0
    LOCAL_WRITE = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_WRITE = enum.auto()
    REMOTE_ATOMIC = enum.auto()
    ALL = LOCAL_WRITE | REMOTE_READ | REMOTE_WRITE | REMOTE_ATOMIC


class Sge:
    """One scatter/gather element: a slice of a local MR."""

    __slots__ = ("mr", "offset", "length")

    def __init__(self, mr, offset: int, length: int):
        if offset < 0 or length < 0:
            raise ValueError("sge offset/length must be non-negative")
        if offset + length > mr.size:
            raise ValueError(
                f"sge [{offset}, {offset + length}) exceeds MR size {mr.size}"
            )
        self.mr = mr
        self.offset = offset
        self.length = length


class SendWR:
    """A send-queue work request (one-sided ops, sends, atomics)."""

    __slots__ = (
        "opcode",
        "sgl",
        "remote_addr",
        "rkey",
        "imm",
        "wr_id",
        "signaled",
        "compare_add",
        "swap",
        "inline_data",
        "read_length",
        "return_data",
        "delivered",
        "_order_done",  # QP send-ordering chain link (set by QP.post_send)
    )

    _next_id = 0

    def __init__(
        self,
        opcode: Opcode,
        sgl: Optional[List[Sge]] = None,
        remote_addr: int = 0,
        rkey: int = 0,
        imm: Optional[int] = None,
        wr_id: Optional[int] = None,
        signaled: bool = True,
        compare_add: int = 0,
        swap: int = 0,
        inline_data: Optional[bytes] = None,
        read_length: int = 0,
    ):
        if opcode is Opcode.WRITE_IMM and imm is None:
            raise ValueError("WRITE_IMM requires an immediate value")
        if imm is not None and not 0 <= imm < 2**32:
            raise ValueError(f"immediate must fit in 32 bits, got {imm}")
        if opcode in (Opcode.FETCH_ADD, Opcode.CMP_SWAP) and sgl:
            total = sum(sge.length for sge in sgl)
            if total != 8:
                raise ValueError("atomics operate on exactly 8 bytes")
        if wr_id is None:
            SendWR._next_id += 1
            wr_id = SendWR._next_id
        self.opcode = opcode
        self.sgl = list(sgl) if sgl else []
        self.remote_addr = remote_addr
        self.rkey = rkey
        self.imm = imm
        self.wr_id = wr_id
        self.signaled = signaled
        self.compare_add = compare_add
        self.swap = swap
        self.inline_data = inline_data
        self.read_length = read_length
        # Filled for sgl-less READ/atomic responses (kernel zero-copy
        # consumers like LITE scatter straight into user memory).
        self.return_data: Optional[bytes] = None
        # Optional event fired the moment the payload lands at the
        # responder (before the ACK returns) — memory-polling receivers
        # like FaRM/HERD observe data at this point, not at the CQE.
        self.delivered = None
        self._order_done = None

    @property
    def length(self) -> int:
        """Total payload bytes this WR moves."""
        if self.inline_data is not None:
            return len(self.inline_data)
        if not self.sgl and self.opcode is Opcode.READ:
            return self.read_length
        return sum(sge.length for sge in self.sgl)


class RecvWR:
    """A receive-queue work request: one landing buffer."""

    __slots__ = ("mr", "offset", "length", "wr_id")

    _next_id = 0

    def __init__(self, mr=None, offset: int = 0, length: int = 0, wr_id=None):
        if wr_id is None:
            RecvWR._next_id += 1
            wr_id = RecvWR._next_id
        if mr is not None and offset + length > mr.size:
            raise ValueError("recv buffer exceeds MR bounds")
        self.mr = mr
        self.offset = offset
        self.length = length
        self.wr_id = wr_id


class WorkCompletion:
    """One CQE."""

    __slots__ = (
        "wr_id",
        "status",
        "opcode",
        "byte_len",
        "imm",
        "qp_num",
        "src_node",
        "src_qpn",
        "completed_at",
    )

    def __init__(
        self,
        wr_id,
        status: WcStatus,
        opcode: Opcode,
        byte_len: int = 0,
        imm: Optional[int] = None,
        qp_num: int = 0,
        src_node: Optional[int] = None,
        src_qpn: Optional[int] = None,
        completed_at: float = 0.0,
    ):
        self.wr_id = wr_id
        self.status = status
        self.opcode = opcode
        self.byte_len = byte_len
        self.imm = imm
        self.qp_num = qp_num
        self.src_node = src_node
        self.src_qpn = src_qpn
        self.completed_at = completed_at

    @property
    def ok(self) -> bool:
        """True when the operation completed successfully."""
        return self.status is WcStatus.SUCCESS

    def __repr__(self) -> str:
        return (
            f"WC(wr_id={self.wr_id}, {self.status.value}, {self.opcode.value}, "
            f"len={self.byte_len}, imm={self.imm})"
        )


def wire_bytes(payload_len: int, mtu: int = RC_MTU) -> int:
    """Bytes on the wire for a message: payload plus per-MTU headers."""
    if payload_len <= 0:
        return WIRE_HEADER_BYTES
    packets = (payload_len + mtu - 1) // mtu
    return payload_len + packets * WIRE_HEADER_BYTES
