"""Completion queues."""

from __future__ import annotations

from typing import List, Optional

from ..sim import Event, Simulator, Store
from .wr import WorkCompletion

__all__ = ["CompletionQueue"]


class CompletionQueue:
    """A CQ: RNICs push CQEs, software polls (or waits) for them.

    ``poll`` is the non-blocking Verbs-style drain; ``wait_wc`` returns
    an event for the next CQE so pollers can be modelled without
    simulating every idle poll-loop iteration (CPU accounting for the
    idle spin is done by :meth:`repro.hw.cpu.CpuSet.busy_wait`).
    """

    _next_id = 0

    def __init__(self, sim: Simulator, depth: int = 4096, name: str = ""):
        CompletionQueue._next_id += 1
        self.cq_id = CompletionQueue._next_id
        self.sim = sim
        self.depth = depth
        self.name = name or f"cq{self.cq_id}"
        self._store = Store(sim)
        self.pushed = 0
        self.polled = 0
        self.overflows = 0
        # Fused fast-path delivery state (repro.verbs.fastpath).
        # fp_pending counts committed-but-undispatched fused deliveries
        # (at most one; new fused commits decline while it is set).
        # fp_bypass marks the bypass window [t_rc, t_disp): the fused
        # CQE "consumed" the parked poller getter at t_rc exactly as
        # the slow path's push would have, so a CQE pushed during the
        # window must land in the backlog *without* waking the poller —
        # the slow path has no getter to wake at that point.  fp_flush
        # hands the oldest backlog entry to the re-parked getter once
        # the fused dispatch has run.
        self.fp_pending = 0
        self.fp_bypass = False

    def push(self, wc: WorkCompletion) -> None:
        """RNIC side: append a CQE (drops + counts on overflow)."""
        if len(self._store) >= self.depth:
            # Real hardware would raise a fatal async event; count it and
            # drop, so benches can assert it never happens.
            self.overflows += 1
            return
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("cq.cqe", cq=self.name, opcode=wc.opcode.value,
                           nbytes=wc.byte_len)
        wc.completed_at = self.sim.now
        self.pushed += 1
        if self.fp_bypass:
            self._store.items.append(wc)
            return
        self._store.put(wc)

    def fp_flush(self) -> None:
        """Wake the parked poller with the oldest backlog CQE, if any.

        Closes a fused-delivery bypass window: a CQE that arrived during
        the window was appended without firing the parked getter; the
        poller must now observe it exactly as the slow path would — an
        immediately-triggered ``wait_wc`` right after dispatching the
        fused CQE (the getter's polled-count callback fires on succeed).
        """
        store = self._store
        if store.items and store._getters:
            store._getters.popleft().succeed(store.items.popleft())

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Drain up to ``max_entries`` CQEs immediately available.

        This is ``ibv_poll_cq(cq, max_entries, ...)``: one software poll
        harvesting a whole backlog of completions in a single call — the
        §5.2 completion-coalescing primitive.  Callers model the CPU cost
        as one poll charge per *call*, not per CQE (see
        :meth:`repro.hw.cpu.CpuSet.adaptive_poll`).
        """
        out: List[WorkCompletion] = []
        while len(out) < max_entries:
            wc = self._store.try_get()
            if wc is None:
                break
            out.append(wc)
        self.polled += len(out)
        return out

    # Verbs-style alias.
    poll_cq = poll

    def wait_wc(self) -> Event:
        """Event that fires with the next CQE (consumes it)."""
        event = self._store.get()
        if event.triggered:
            self.polled += 1
        else:
            event.callbacks.append(self._count_polled)
        return event

    def _count_polled(self, _event) -> None:
        self.polled += 1

    def __len__(self) -> int:
        return len(self._store)
