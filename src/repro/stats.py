"""Cluster instrumentation: one-call metric snapshots and deltas.

Benchmarks and applications routinely need "what did the hardware do
between A and B": RNIC SRAM hit rates, per-tag CPU time, fabric bytes,
LITE op counts.  :func:`snapshot` captures it all; ``Snapshot.delta``
subtracts a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .obs.metrics import HistogramSnapshot

__all__ = ["NodeStats", "Snapshot", "snapshot"]


@dataclass
class NodeStats:
    """Counters of one node at a point in simulated time."""

    node_id: int
    cpu_busy: Dict[str, float] = field(default_factory=dict)
    key_cache_hits: int = 0
    key_cache_misses: int = 0
    pte_cache_hits: int = 0
    pte_cache_misses: int = 0
    qp_cache_hits: int = 0
    qp_cache_misses: int = 0
    wqe_count: int = 0
    dma_bytes: int = 0
    tx_bytes: int = 0
    rx_bytes: int = 0
    dram_allocated: int = 0
    lite_reads: int = 0
    lite_writes: int = 0
    lite_atomics: int = 0
    lite_rpcs_sent: int = 0
    lite_rpcs_served: int = 0
    lite_qps: int = 0

    @property
    def key_hit_rate(self) -> float:
        """MR-key SRAM hit rate."""
        total = self.key_cache_hits + self.key_cache_misses
        return self.key_cache_hits / total if total else 1.0

    @property
    def pte_hit_rate(self) -> float:
        """PTE SRAM hit rate."""
        total = self.pte_cache_hits + self.pte_cache_misses
        return self.pte_cache_hits / total if total else 1.0

    @property
    def total_cpu(self) -> float:
        """CPU time across every tag."""
        return sum(self.cpu_busy.values())

    def delta(self, baseline: "NodeStats") -> "NodeStats":
        """Counters accumulated since ``baseline`` (same node)."""
        if baseline.node_id != self.node_id:
            raise ValueError("delta between different nodes")
        tags = set(self.cpu_busy) | set(baseline.cpu_busy)
        return NodeStats(
            node_id=self.node_id,
            cpu_busy={
                tag: self.cpu_busy.get(tag, 0.0) - baseline.cpu_busy.get(tag, 0.0)
                for tag in tags
            },
            key_cache_hits=self.key_cache_hits - baseline.key_cache_hits,
            key_cache_misses=self.key_cache_misses - baseline.key_cache_misses,
            pte_cache_hits=self.pte_cache_hits - baseline.pte_cache_hits,
            pte_cache_misses=self.pte_cache_misses - baseline.pte_cache_misses,
            qp_cache_hits=self.qp_cache_hits - baseline.qp_cache_hits,
            qp_cache_misses=self.qp_cache_misses - baseline.qp_cache_misses,
            wqe_count=self.wqe_count - baseline.wqe_count,
            dma_bytes=self.dma_bytes - baseline.dma_bytes,
            tx_bytes=self.tx_bytes - baseline.tx_bytes,
            rx_bytes=self.rx_bytes - baseline.rx_bytes,
            dram_allocated=self.dram_allocated - baseline.dram_allocated,
            lite_reads=self.lite_reads - baseline.lite_reads,
            lite_writes=self.lite_writes - baseline.lite_writes,
            lite_atomics=self.lite_atomics - baseline.lite_atomics,
            lite_rpcs_sent=self.lite_rpcs_sent - baseline.lite_rpcs_sent,
            lite_rpcs_served=self.lite_rpcs_served - baseline.lite_rpcs_served,
            lite_qps=self.lite_qps,
        )


@dataclass
class Snapshot:
    """Whole-cluster counters at one simulated instant."""

    at: float
    nodes: Dict[int, NodeStats]
    fabric_bytes: int
    fabric_transfers: int
    # Per-op-type latency histograms (e.g. "op.lt_write"), populated when
    # a tracer is installed on the cluster; None otherwise.
    op_latency: Optional[Dict[str, HistogramSnapshot]] = None

    def delta(self, baseline: "Snapshot") -> "Snapshot":
        """Counters accumulated since ``baseline``."""
        return Snapshot(
            at=self.at - baseline.at,
            nodes={
                node_id: stats.delta(baseline.nodes[node_id])
                for node_id, stats in self.nodes.items()
                if node_id in baseline.nodes
            },
            fabric_bytes=self.fabric_bytes - baseline.fabric_bytes,
            fabric_transfers=self.fabric_transfers - baseline.fabric_transfers,
            op_latency=_hist_delta(self.op_latency, baseline.op_latency),
        )

    def total_cpu(self) -> float:
        """Cluster-wide CPU time."""
        return sum(stats.total_cpu for stats in self.nodes.values())

    def summary(self) -> str:
        """Human-readable digest, one line per node."""
        lines = [f"snapshot @ {self.at:.1f} us: "
                 f"{self.fabric_bytes} fabric bytes, "
                 f"{self.fabric_transfers} transfers"]
        for node_id in sorted(self.nodes):
            stats = self.nodes[node_id]
            lines.append(
                f"  node {node_id}: cpu {stats.total_cpu:.1f} us, "
                f"{stats.wqe_count} WQEs, "
                f"keys {stats.key_hit_rate:.0%} / ptes {stats.pte_hit_rate:.0%} hit, "
                f"lite r/w/a {stats.lite_reads}/{stats.lite_writes}/"
                f"{stats.lite_atomics}"
            )
        if self.op_latency:
            for name in sorted(self.op_latency):
                snap = self.op_latency[name]
                if snap.count == 0:
                    continue
                lines.append(
                    f"  {name}: n={snap.count} "
                    f"p50={snap.percentile(50):.2f} us "
                    f"p99={snap.percentile(99):.2f} us"
                )
        return "\n".join(lines)


def _hist_delta(
    current: Optional[Dict[str, HistogramSnapshot]],
    baseline: Optional[Dict[str, HistogramSnapshot]],
) -> Optional[Dict[str, HistogramSnapshot]]:
    """Delta of two op-latency maps (missing baseline entries = zero)."""
    if current is None:
        return None
    if baseline is None:
        return dict(current)
    return {
        name: (snap.delta(baseline[name]) if name in baseline else snap)
        for name, snap in current.items()
    }


def _node_stats(node) -> NodeStats:
    stats = NodeStats(node_id=node.node_id)
    stats.cpu_busy = dict(node.cpu.busy_time)
    rnic = node.rnic
    stats.key_cache_hits = rnic.key_cache.stats.hits
    stats.key_cache_misses = rnic.key_cache.stats.misses
    stats.pte_cache_hits = rnic.pte_cache.stats.hits
    stats.pte_cache_misses = rnic.pte_cache.stats.misses
    stats.qp_cache_hits = rnic.qp_cache.stats.hits
    stats.qp_cache_misses = rnic.qp_cache.stats.misses
    stats.wqe_count = rnic.wqe_count
    stats.dma_bytes = rnic.bytes_dma
    stats.tx_bytes = node.port.tx_bytes
    stats.rx_bytes = node.port.rx_bytes
    stats.dram_allocated = node.memory.allocated_bytes
    lite = node.lite
    if lite is not None and lite.booted:
        stats.lite_reads = lite.onesided.reads
        stats.lite_writes = lite.onesided.writes
        stats.lite_atomics = lite.onesided.atomics
        stats.lite_rpcs_sent = lite.rpc.calls_sent
        stats.lite_rpcs_served = lite.rpc.calls_served
        stats.lite_qps = lite.total_qps()
    return stats


def snapshot(cluster) -> Snapshot:
    """Capture every node's counters plus fabric totals."""
    tracer = cluster.sim.tracer
    op_latency = None
    if tracer is not None:
        op_latency = {
            name: tracer.metrics.hists[name].snapshot()
            for name in sorted(tracer.metrics.hists)
        }
    return Snapshot(
        at=cluster.sim.now,
        nodes={node.node_id: _node_stats(node) for node in cluster.nodes},
        fabric_bytes=cluster.fabric.total_bytes,
        fabric_transfers=cluster.fabric.transfer_count,
        op_latency=op_latency,
    )
